(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md section 4 for the experiment index).

   Usage:
     dune exec bench/main.exe                     # everything, default scale
     dune exec bench/main.exe -- table2 --scale 1 # one experiment, full size
     dune exec bench/main.exe -- micro            # bechamel kernels

   Commands: table1 fig2 fig3 fig4 fig5 table2 table3 scaling
             ablation-truncation ablation-v ablation-routing sweep-fabric
             perf serve chaos micro all

   --jobs N (or $LEQA_JOBS) sets the default domain-pool width; the perf
   command times serial vs parallel hot paths, the numeric-guard
   overhead (guards off vs on) and the telemetry probe cost (ambient
   sink uninstalled vs collecting), and writes BENCH_PR3.json
   (--out overrides; --scale 0 = the @perf-smoke variant). *)

module Params = Leqa_fabric.Params
module Geometry = Leqa_fabric.Geometry
module Qodg = Leqa_qodg.Qodg
module Critical_path = Leqa_qodg.Critical_path
module Iig = Leqa_iig.Iig
module Decompose = Leqa_circuit.Decompose
module Ft_circuit = Leqa_circuit.Ft_circuit
module Estimator = Leqa_core.Estimator
module Config = Leqa_core.Config
module Coverage = Leqa_core.Coverage
module Qspr = Leqa_qspr.Qspr
module Scheduler = Leqa_qspr.Scheduler
module Suite = Leqa_benchmarks.Suite
module Stats = Leqa_util.Stats
module Timing = Leqa_util.Timing
module Table = Leqa_util.Table
module Rng = Leqa_util.Rng
module Mm1 = Leqa_queueing.Mm1
module Json = Leqa_util.Json
module Pool = Leqa_util.Pool
module Simulate = Leqa_queueing.Simulate
module Telemetry = Leqa_util.Telemetry
module Engine = Leqa_server.Engine
module Protocol = Leqa_server.Protocol
module Source = Leqa_server.Source

let header title =
  Printf.printf "\n=== %s ===\n\n" title

(* ------------------------------------------------------------------ *)
(* Table 1: physical parameters                                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: physical parameters of the TQA";
  Format.printf "%a@." Params.pp Params.default;
  Printf.printf
    "\nCalibrated mapper speed (Section 3.2 tuning knob): v = %g\n\
     (the paper tuned v = 0.001 against its QSPR; this repository's QSPR\n\
     calibrates to v = %g — see EXPERIMENTS.md)\n"
    Params.calibrated.Params.v Params.calibrated.Params.v

(* ------------------------------------------------------------------ *)
(* Figure 2: ham3 walk-through                                         *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Figure 2: ham3 circuit and its QODG";
  let circ = Leqa_benchmarks.Hamming.ham3 () in
  Format.printf "%a@." Leqa_circuit.Circuit.pp_summary circ;
  let ft = Decompose.to_ft circ in
  Format.printf "%a@." Ft_circuit.pp_summary ft;
  let qodg = Qodg.of_ft_circuit ft in
  Format.printf "%a@." Qodg.pp_summary qodg;
  Printf.printf "logical depth: %d\n" (Critical_path.depth qodg);
  Printf.printf "\nQODG adjacency (op nodes 1..%d, 0 = start, %d = end):\n"
    (Qodg.num_nodes qodg - 2)
    (Qodg.finish_node qodg);
  let dag = Qodg.dag qodg in
  List.iter
    (fun node ->
      let g = Qodg.gate_exn qodg node in
      Printf.printf "  %2d %-12s -> %s\n" node
        (Leqa_circuit.Ft_gate.to_string g)
        (String.concat ","
           (List.map string_of_int
              (List.sort compare (Leqa_qodg.Dag.succs dag node)))))
    (Qodg.op_nodes qodg)

(* ------------------------------------------------------------------ *)
(* Figure 3: presence zones and congestion                             *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Figure 3: five random presence zones on a 20x12 fabric";
  let width = 20 and height = 12 in
  let rng = Rng.create ~seed:1303 in
  let zones =
    List.init 5 (fun _ ->
        let side = 3 + Rng.int rng ~bound:3 in
        let x = 1 + Rng.int rng ~bound:(width - side + 1) in
        let y = 1 + Rng.int rng ~bound:(height - side + 1) in
        (x, y, side))
  in
  let overlap x y =
    List.length
      (List.filter
         (fun (zx, zy, side) ->
           x >= zx && x < zx + side && y >= zy && y < zy + side)
         zones)
  in
  for y = 1 to height do
    for x = 1 to width do
      let c = overlap x y in
      print_char (if c = 0 then '.' else Char.chr (Char.code '0' + c))
    done;
    print_newline ()
  done;
  let most = ref 0 in
  for y = 1 to height do
    for x = 1 to width do
      most := max !most (overlap x y)
    done
  done;
  Printf.printf
    "\nmax overlap: %d zones (the paper's 'highly congested' area)\n" !most;
  (* analytic counterpart: E[S_q] for 5 zones of the average side *)
  let avg_area =
    Stats.mean
      (Array.of_list (List.map (fun (_, _, s) -> float_of_int (s * s)) zones))
  in
  let surfaces =
    Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits:5 ~terms:5
  in
  Printf.printf "\nE[S_q] for 5 zones of average area %.1f:\n" avg_area;
  Array.iteri
    (fun i s -> Printf.printf "  q=%d: %7.2f ULBs\n" (i + 1) s)
    surfaces

(* ------------------------------------------------------------------ *)
(* Figure 4: P_{x,y}                                                   *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Figure 4: coverage probability P(x,y) (Eq 5)";
  let width = 60 and height = 60 and avg_area = 25.0 in
  let s = Coverage.zone_side ~avg_area ~width ~height in
  Printf.printf "fabric %dx%d, zone side ceil(sqrt(%.0f)) = %d\n\n" width
    height avg_area s;
  Printf.printf "P(x, 30) profile along the middle row:\n";
  List.iter
    (fun x ->
      let p = Coverage.coverage_probability ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~x ~y:30 in
      Printf.printf "  x=%2d: %.6f%s\n" x p
        (if x <= s then "   (boundary ramp)" else ""))
    [ 1; 2; 3; 4; 5; 6; 10; 20; 30 ];
  (* Eq 3 cross-check *)
  let qubits = 20 in
  let surfaces =
    Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits ~terms:qubits
  in
  let total =
    Coverage.expected_uncovered ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits
    +. Array.fold_left ( +. ) 0.0 surfaces
  in
  Printf.printf
    "\nEq-3 constraint with Q=%d zones: sum_q E[S_q] = %.4f (A = %d)\n" qubits
    total (width * height)

(* ------------------------------------------------------------------ *)
(* Figure 5: the M/M/1 channel model                                   *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "Figure 5: routing-channel congestion model (Eq 8 vs simulation)";
  let nc = Params.default.Params.nc in
  let d_uncong = 800.0 in
  let table =
    Table.create
      ~columns:
        [
          ("q (qubits in channel)", Table.Right);
          ("d_q closed form (us)", Table.Right);
          ("M/M/c sim sojourn (us)", Table.Right);
        ]
  in
  List.iter
    (fun q ->
      let closed = Mm1.congestion_delay ~nc ~d_uncong ~q in
      (* simulate a capacity-nc channel at the arrival rate Eq 10 implies *)
      let sim =
        if q = 0 then d_uncong /. float_of_int nc
        else begin
          let mu_per_server = 1.0 /. d_uncong in
          let lambda =
            Mm1.lambda_of_queue_length ~queue_length:(float_of_int q)
              ~mu:(float_of_int nc *. mu_per_server)
          in
          let rng = Rng.create ~seed:(500 + q) in
          let r =
            Leqa_queueing.Simulate.run_multi_server ~rng ~lambda
              ~mu_per_server ~servers:nc ~horizon:2_000_000.0
          in
          r.Leqa_queueing.Simulate.avg_sojourn_time
        end
      in
      Table.add_row table
        [
          string_of_int q;
          Printf.sprintf "%.0f" closed;
          (if q = 0 then "-" else Printf.sprintf "%.0f" sim);
        ])
    [ 0; 1; 2; 3; 5; 6; 8; 10; 15; 20 ];
  Table.print table;
  Printf.printf
    "\nuncongested while q <= N_c = %d; beyond that Eq 8 pipelines at\n\
     (1+q)/N_c x d_uncong.  The discrete-event column simulates the same\n\
     channel as %d exponential servers.\n"
    nc nc;
  (* empirical side: the detailed mapper's measured channel wait as the
     fabric's capacity shrinks *)
  let qodg =
    Qodg.of_ft_circuit
      (Decompose.to_ft (Leqa_benchmarks.Gf2_mult.circuit ~n:16 ()))
  in
  let table =
    Table.create
      ~columns:
        [
          ("N_c", Table.Right);
          ("QSPR latency (s)", Table.Right);
          ("wait per hop (us)", Table.Right);
        ]
  in
  List.iter
    (fun nc ->
      let params = { Params.default with Params.nc } in
      let r =
        Qspr.run ~config:{ Qspr.default_config with Qspr.params } qodg
      in
      let s = r.Qspr.stats in
      Table.add_row table
        [
          string_of_int nc;
          Printf.sprintf "%.4f" r.Qspr.latency_s;
          Printf.sprintf "%.2f"
            (s.Scheduler.channel_wait /. float_of_int (max 1 s.Scheduler.hops));
        ])
    [ 1; 2; 3; 5; 10 ];
  Printf.printf "\nempirical (gf2^16mult under the detailed mapper):\n";
  Table.print table;
  Printf.printf
    "\nmeasured channel waits are tiny even at N_c = 1: the deferral\n\
     scheduler and A* router dodge congestion, so the uncongested branch\n\
     of Eq 8 dominates in practice — the same reason the K = 20 E[S_q]\n\
     truncation is the right operating point (see ablation-truncation).\n"

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: the 18-benchmark comparison                         *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  qubits : int;
  ops : int;
  actual_s : float;
  estimated_s : float;
  error : float;
  qspr_runtime : float;
  leqa_runtime : float;
}

let run_suite ~scale =
  (* independent per-benchmark pipelines (build → QSPR → LEQA): fan out
     over the default pool; map_list keeps Table 2/3 row order *)
  Pool.map_list (Pool.get_default ())
    ~f:(fun entry ->
      let circ = Suite.build_scaled entry ~scale in
      let ft = Decompose.to_ft circ in
      (* the QODG is the *input* of both tools (Algorithm 1 takes it as an
         argument; QSPR maps it), so its construction — like the shared
         parsers of Section 4.1 — is excluded from both runtimes *)
      let qodg = Qodg.of_ft_circuit ft in
      let actual, qspr_t = Timing.time (fun () -> Qspr.run qodg) in
      let estimated, leqa_t =
        Timing.time (fun () ->
            Estimator.estimate ~params:Params.calibrated qodg)
      in
      {
        name = entry.Suite.name;
        qubits = Ft_circuit.num_qubits ft;
        ops = Ft_circuit.num_gates ft;
        actual_s = actual.Qspr.latency_s;
        estimated_s = estimated.Estimator.latency_s;
        error =
          Stats.relative_error ~actual:actual.Qspr.latency_s
            ~estimated:estimated.Estimator.latency_s;
        qspr_runtime = qspr_t;
        leqa_runtime = leqa_t;
      })
    Suite.all

let table2 rows ~scale =
  header
    (Printf.sprintf
       "Table 2: actual (QSPR) vs estimated (LEQA) latency   [scale %.2f]"
       scale);
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Actual Delay (sec)", Table.Right);
          ("Estimated Delay (sec)", Table.Right);
          ("Absolute Error (%)", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          Printf.sprintf "%.3E" r.actual_s;
          Printf.sprintf "%.3E" r.estimated_s;
          Printf.sprintf "%.2f" (100.0 *. r.error);
        ])
    rows;
  Table.print table;
  let errors = Array.of_list (List.map (fun r -> 100.0 *. r.error) rows) in
  Printf.printf "\naverage error: %.2f%%   max error: %.2f%%\n"
    (Stats.mean errors)
    (Array.fold_left Float.max 0.0 errors);
  Printf.printf "(paper: average 2.11%%, max 8.29%%)\n"

let rows_to_json rows ~scale =
  Json.Obj
    [
      ("scale", Json.Float scale);
      ("v_calibrated", Json.Float Params.calibrated.Params.v);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("benchmark", Json.String r.name);
                   ("qubits", Json.Int r.qubits);
                   ("operations", Json.Int r.ops);
                   ("actual_s", Json.Float r.actual_s);
                   ("estimated_s", Json.Float r.estimated_s);
                   ("error", Json.Float r.error);
                   ("qspr_runtime_s", Json.Float r.qspr_runtime);
                   ("leqa_runtime_s", Json.Float r.leqa_runtime);
                 ])
             rows) );
    ]

let table3 rows ~scale =
  header
    (Printf.sprintf
       "Table 3: benchmark sizes and tool runtimes   [scale %.2f]" scale);
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Qubit Count", Table.Right);
          ("Operation Count", Table.Right);
          ("QSPR Runtime (sec)", Table.Right);
          ("LEQA Runtime (sec)", Table.Right);
          ("Speedup (X)", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          string_of_int r.qubits;
          string_of_int r.ops;
          Printf.sprintf "%.3f" r.qspr_runtime;
          Printf.sprintf "%.4f" r.leqa_runtime;
          Printf.sprintf "%.1f" (r.qspr_runtime /. r.leqa_runtime);
        ])
    rows;
  Table.print table;
  (* the Section 4.2 scaling claim, from the suite itself; fit only the
     asymptotic rows — tiny benchmarks measure constant overhead, not
     scaling *)
  let usable =
    List.filter
      (fun r -> r.ops >= 5000 && r.qspr_runtime > 1e-4 && r.leqa_runtime > 1e-4)
      rows
  in
  if List.length usable >= 3 then begin
    let points f = List.map (fun r -> (float_of_int r.ops, f r)) usable in
    let _, k_qspr = Stats.fit_power_law (points (fun r -> r.qspr_runtime)) in
    let _, k_leqa = Stats.fit_power_law (points (fun r -> r.leqa_runtime)) in
    Printf.printf
      "\nfitted runtime scaling: QSPR ~ ops^%.2f, LEQA ~ ops^%.2f\n\
       (paper: QSPR degree ~1.5, LEQA linear)\n"
      k_qspr k_leqa
  end

(* ------------------------------------------------------------------ *)
(* Section 4.2 scaling study + Shor extrapolation                      *)
(* ------------------------------------------------------------------ *)

let scaling () =
  header "Section 4.2: runtime scaling on the gf2^n family";
  let sizes = [ 16; 24; 32; 48; 64; 96; 128 ] in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("FT ops", Table.Right);
          ("QSPR (s)", Table.Right);
          ("LEQA (s)", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let qspr_points = ref [] and leqa_points = ref [] in
  List.iter
    (fun n ->
      let qodg =
        Qodg.of_ft_circuit
          (Decompose.to_ft (Leqa_benchmarks.Gf2_mult.circuit ~n ()))
      in
      let ops = float_of_int (Qodg.num_nodes qodg - 2) in
      let _, qspr_t = Timing.time (fun () -> Qspr.run qodg) in
      let _, leqa_t =
        Timing.time (fun () ->
            Estimator.estimate ~params:Params.calibrated qodg)
      in
      qspr_points := (ops, qspr_t) :: !qspr_points;
      leqa_points := (ops, leqa_t) :: !leqa_points;
      Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.0f" ops;
          Printf.sprintf "%.3f" qspr_t;
          Printf.sprintf "%.4f" leqa_t;
          Printf.sprintf "%.1f" (qspr_t /. leqa_t);
        ])
    sizes;
  Table.print table;
  let c_qspr, k_qspr = Stats.fit_power_law !qspr_points in
  let c_leqa, k_leqa = Stats.fit_power_law !leqa_points in
  Printf.printf "\nQSPR ~ %.2e * ops^%.2f, LEQA ~ %.2e * ops^%.2f\n" c_qspr
    k_qspr c_leqa k_leqa;
  let shor_ops = 1.35e10 in
  Printf.printf
    "Shor-1024 extrapolation (%.2e logical ops):\n\
    \  QSPR: %.1f days     LEQA: %.1f hours\n\
     (paper: ~2 years vs 16.5 hours on 2010-era hardware)\n"
    shor_ops
    (c_qspr *. (shor_ops ** k_qspr) /. 86_400.0)
    (c_leqa *. (shor_ops ** k_leqa) /. 3_600.0)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_benchmarks ~scale =
  List.filter_map
    (fun name ->
      Option.map
        (fun e ->
          let circ = Suite.build_scaled e ~scale in
          let qodg = Qodg.of_ft_circuit (Decompose.to_ft circ) in
          let actual = (Qspr.run qodg).Qspr.latency_s in
          (name, qodg, actual))
        (Suite.find name))
    [ "8bitadder"; "gf2^16mult"; "hwb15ps"; "ham15"; "gf2^64mult"; "hwb50ps" ]

let ablation_truncation ~scale:_ =
  header
    "Ablation: E[S_q] truncation (the paper computes only the first 20 terms)";
  (* truncation only matters when many zones overlap, i.e. at high qubit
     counts relative to the fabric — so this ablation always runs the three
     largest benchmarks at full (paper) size, whatever --scale says *)
  let prepared =
    List.filter_map
      (fun name ->
        Option.map
          (fun e ->
            let circ = Suite.build_scaled e ~scale:1.0 in
            let qodg = Qodg.of_ft_circuit (Decompose.to_ft circ) in
            let actual = (Qspr.run qodg).Qspr.latency_s in
            (name, qodg, actual))
          (Suite.find name))
      [ "gf2^128mult"; "hwb200ps"; "gf2^256mult" ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("K (terms)", Table.Right);
          ("avg error (%)", Table.Right);
          ("max error (%)", Table.Right);
          ("LEQA time (s)", Table.Right);
        ]
  in
  List.iter
    (fun terms ->
      let config = { Config.truncation_terms = terms } in
      let errors, times =
        List.split
          (List.map
             (fun (_, qodg, actual) ->
               let est, t =
                 Timing.time (fun () ->
                     Estimator.estimate ~config ~params:Params.calibrated qodg)
               in
               ( Stats.relative_error ~actual
                   ~estimated:est.Estimator.latency_s,
                 t ))
             prepared)
      in
      let errors = Array.of_list (List.map (fun e -> 100.0 *. e) errors) in
      Table.add_row table
        [
          string_of_int terms;
          Printf.sprintf "%.2f" (Stats.mean errors);
          Printf.sprintf "%.2f" (Array.fold_left Float.max 0.0 errors);
          Printf.sprintf "%.4f"
            (List.fold_left ( +. ) 0.0 times);
        ])
    [ 1; 5; 10; 20; 40; 60; 100; 200; 3200 ];
  Table.print table;
  Printf.printf
    "\nthe paper's choice K = 20 balances both tails: too few terms miss\n\
     congestion mass (underestimate), the exact series overweights the\n\
     M/M/1 pipeline penalty (overestimate) and costs linearly more time.\n"

let ablation_v ~scale =
  header "Ablation: the mapper-tuning parameter v (Section 3.2)";
  let prepared = ablation_benchmarks ~scale in
  let table =
    Table.create
      ~columns:
        [
          ("v", Table.Right);
          ("avg error (%)", Table.Right);
          ("max error (%)", Table.Right);
        ]
  in
  List.iter
    (fun v ->
      let params = { Params.default with Params.v } in
      let errors =
        Array.of_list
          (List.map
             (fun (_, qodg, actual) ->
               let est = Estimator.estimate ~params qodg in
               100.0
               *. Stats.relative_error ~actual
                    ~estimated:est.Estimator.latency_s)
             prepared)
      in
      Table.add_row table
        [
          Printf.sprintf "%.4f" v;
          Printf.sprintf "%.2f" (Stats.mean errors);
          Printf.sprintf "%.2f" (Array.fold_left Float.max 0.0 errors);
        ])
    [ 0.0005; 0.001; 0.002; 0.003; 0.005; 0.008; 0.01; 0.02 ];
  Table.print table;
  Printf.printf
    "\nv = %.4g is this repository's calibration (Params.calibrated); the\n\
     paper used 0.001 for its own mapper.\n"
    Params.calibrated.Params.v

let ablation_routing ~scale =
  header "Ablation: QSPR router (congestion-aware A* vs dimension-order XY)";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("lat A*/XY", Table.Right);
          ("A* time (s)", Table.Right);
          ("XY time (s)", Table.Right);
          ("A* nodes explored", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e ->
        let qodg =
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
        in
        let astar, astar_t = Timing.time (fun () -> Qspr.run qodg) in
        let xy, xy_t =
          Timing.time (fun () ->
              Qspr.run
                ~config:
                  { Qspr.default_config with Qspr.routing = Leqa_qspr.Router.Xy }
                qodg)
        in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.3f" (astar.Qspr.latency_s /. xy.Qspr.latency_s);
            Printf.sprintf "%.3f" astar_t;
            Printf.sprintf "%.3f" xy_t;
            string_of_int astar.Qspr.stats.Scheduler.search_nodes;
          ])
    [ "gf2^16mult"; "hwb15ps"; "gf2^64mult"; "hwb100ps"; "gf2^128mult" ];
  Table.print table;
  Printf.printf
    "\nwith the deferral scheduler traffic stays light enough that both\n\
     routers find Manhattan-length paths (latency ratio ~1); the search\n\
     effort is what separates them — the cost a detailed mapper pays per\n\
     route, and exactly what LEQA avoids paying per operation.\n"

let ablation_topology ~scale =
  header "Extension: grid vs torus channel topology";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("grid actual (s)", Table.Right);
          ("torus actual (s)", Table.Right);
          ("grid LEQA (s)", Table.Right);
          ("torus LEQA (s)", Table.Right);
          ("torus err (%)", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e ->
        let qodg =
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
        in
        let torus_params =
          { Params.default with Params.topology = Params.Torus }
        in
        let grid_actual = Qspr.run qodg in
        let torus_actual =
          Qspr.run
            ~config:{ Qspr.default_config with Qspr.params = torus_params }
            qodg
        in
        let grid_est = Estimator.estimate ~params:Params.calibrated qodg in
        let torus_est =
          Estimator.estimate
            ~params:{ Params.calibrated with Params.topology = Params.Torus }
            qodg
        in
        let err =
          Stats.relative_error ~actual:torus_actual.Qspr.latency_s
            ~estimated:torus_est.Estimator.latency_s
        in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.4f" grid_actual.Qspr.latency_s;
            Printf.sprintf "%.4f" torus_actual.Qspr.latency_s;
            Printf.sprintf "%.4f" grid_est.Estimator.latency_s;
            Printf.sprintf "%.4f" torus_est.Estimator.latency_s;
            Printf.sprintf "%.2f" (100.0 *. err);
          ])
    [ "8bitadder"; "gf2^16mult"; "hwb15ps"; "gf2^64mult" ];
  Table.print table;
  Printf.printf
    "\nthe torus coverage model (uniform P = s^2/A, no Eq-5 boundary term)\n\
     tracks the torus mapper as well as the grid pair tracks each other.\n"

let ablation_mappers ~scale =
  header
    "Extension: tuning LEQA to a different mapper (Section 3.2's v knob)";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("channel actual (s)", Table.Right);
          ("LEQA@v_chan err (%)", Table.Right);
          ("SWAP actual (s)", Table.Right);
          ("LEQA@v_swap err (%)", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e ->
        let qodg =
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
        in
        let channel = Qspr.run qodg in
        let swap =
          Leqa_qspr.Swap_mapper.run ~params:Params.default
            ~placement:Leqa_qspr.Placement.Spread qodg
        in
        let est_chan = Estimator.estimate ~params:Params.calibrated qodg in
        let est_swap =
          Estimator.estimate
            ~params:
              {
                Params.default with
                Params.v = Leqa_qspr.Swap_mapper.calibrated_v;
              }
            qodg
        in
        let err actual est =
          100.0
          *. Stats.relative_error ~actual ~estimated:est.Estimator.latency_s
        in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.3f" channel.Qspr.latency_s;
            Printf.sprintf "%.2f" (err channel.Qspr.latency_s est_chan);
            Printf.sprintf "%.3f" (Leqa_qspr.Swap_mapper.latency_s swap);
            Printf.sprintf "%.2f"
              (err (Leqa_qspr.Swap_mapper.latency_s swap) est_swap);
          ])
    [ "8bitadder"; "gf2^16mult"; "hwb15ps"; "ham15"; "gf2^50mult" ];
  Table.print table;
  Printf.printf
    "\nthe same estimator tracks two structurally different mappers through\n\
     the single knob v (channel mapper: v = %.3g; SWAP mapper: v = %.3g).\n\
     accuracy on the SWAP mapper is visibly coarser: its bimodal step\n\
     costs (cheap shuttles vs 3-CNOT exchanges) strain LEQA's single-speed\n\
     channel abstraction.\n"
    Params.calibrated.Params.v Leqa_qspr.Swap_mapper.calibrated_v

let ablation_deferral ~scale =
  header
    "Ablation: the deferral (rescheduling) step of the detailed mapper";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("with deferral (s)", Table.Right);
          ("greedy commit (s)", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e ->
        let qodg =
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
        in
        let run defer =
          (Scheduler.run ~defer ~params:Params.default
             ~placement:Leqa_qspr.Placement.Spread qodg)
            .Scheduler.latency /. 1e6
        in
        let deferred = run true and greedy = run false in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.4f" deferred;
            Printf.sprintf "%.4f" greedy;
            Printf.sprintf "%.3f" (deferred /. greedy);
          ])
    [ "8bitadder"; "gf2^16mult"; "hwb15ps"; "gf2^64mult"; "gf2^128mult" ];
  Table.print table;
  Printf.printf
    "\nthe paper: 'the operation should be deferred by one or more\n\
     scheduling steps'.  In this mapper the ratio sits at ~1.000: the\n\
     radius-2 tile search already dodges almost every hot spot, so the\n\
     deferral path rarely fires — a null result worth recording, since it\n\
     says the latency gains attributed to rescheduling can come from\n\
     better tile choice instead.\n"

let complexity () =
  header "Eq 17: LEQA runtime = a*(|V|+|E|) + b*(A*K*logQ)";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("V+E (1e3)", Table.Right);
          ("A*K*logQ (1e6)", Table.Right);
          ("runtime (ms)", Table.Right);
        ]
  in
  let samples = ref [] in
  List.iter
    (fun e ->
      let qodg =
        Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale:0.5))
      in
      let q = float_of_int (Qodg.num_qubits qodg) in
      let graph_cost = float_of_int (Qodg.num_nodes qodg + Qodg.num_edges qodg) in
      (* the paper truncates the q-loop at K = 20 terms *)
      let coverage_cost =
        Float.min q 20.0 *. float_of_int (Params.area Params.default)
        *. Float.max 1.0 (log q)
      in
      let _, dt =
        Timing.time (fun () ->
            Estimator.estimate ~params:Params.calibrated qodg)
      in
      samples := (graph_cost, coverage_cost, dt) :: !samples;
      Table.add_row table
        [
          e.Suite.name;
          Printf.sprintf "%.1f" (graph_cost /. 1e3);
          Printf.sprintf "%.2f" (coverage_cost /. 1e6);
          Printf.sprintf "%.2f" (dt *. 1e3);
        ])
    Suite.all;
  Table.print table;
  (* two-term least squares t = a*x + b*y (no intercept) *)
  let sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
  let sxt = ref 0.0 and syt = ref 0.0 in
  List.iter
    (fun (x, y, t) ->
      sxx := !sxx +. (x *. x);
      syy := !syy +. (y *. y);
      sxy := !sxy +. (x *. y);
      sxt := !sxt +. (x *. t);
      syt := !syt +. (y *. t))
    !samples;
  let det = (!sxx *. !syy) -. (!sxy *. !sxy) in
  if abs_float det > 1e-9 then begin
    let a = ((!syy *. !sxt) -. (!sxy *. !syt)) /. det in
    let b = ((!sxx *. !syt) -. (!sxy *. !sxt)) /. det in
    let ss_res = ref 0.0 and ss_tot = ref 0.0 in
    let mean_t =
      List.fold_left (fun acc (_, _, t) -> acc +. t) 0.0 !samples
      /. float_of_int (List.length !samples)
    in
    List.iter
      (fun (x, y, t) ->
        let p = (a *. x) +. (b *. y) in
        ss_res := !ss_res +. ((t -. p) ** 2.0);
        ss_tot := !ss_tot +. ((t -. mean_t) ** 2.0))
      !samples;
    Printf.printf
      "\nfit: runtime = %.0f ns * (V+E)  +  %.2f ns * (A*K*logQ)    R^2 = %.3f\n\
       the two-term linear model of Eq 17 explains the estimator's runtime;\n\
       the graph term costs far more per unit than the coverage term, which\n\
       is why truncating K keeps LEQA effectively linear in the circuit.\n"
      (a *. 1e9) (b *. 1e9)
      (1.0 -. (!ss_res /. Float.max 1e-12 !ss_tot))
  end

let ablation_placement ~scale =
  header
    "Ablation: initial placement (LEQA's Eq-5 assumes random zone sites)";
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("spread (s)", Table.Right);
          ("random (s)", Table.Right);
          ("clustered (s)", Table.Right);
          ("LEQA (s)", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e ->
        let qodg =
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
        in
        let iig = Iig.of_qodg qodg in
        let run placement =
          (Qspr.run ~config:{ Qspr.default_config with Qspr.placement } qodg)
            .Qspr.latency_s
        in
        let est = Estimator.estimate ~params:Params.calibrated qodg in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.4f" (run Leqa_qspr.Placement.Spread);
            Printf.sprintf "%.4f" (run (Leqa_qspr.Placement.Random 11));
            Printf.sprintf "%.4f"
              (run (Leqa_qspr.Placement.Clustered iig));
            Printf.sprintf "%.4f" est.Estimator.latency_s;
          ])
    [ "8bitadder"; "gf2^16mult"; "hwb15ps"; "ham15" ];
  Table.print table;
  Printf.printf
    "\nplacement barely moves the total latency here because ULB gate\n\
     delays dominate routing on this fabric — the regime in which the\n\
     paper's random-placement assumption is safe.  LEQA tracks all three.\n"

let table1_designed () =
  header "Table 1 provenance: the ULB fabric designer";
  let d = Leqa_ulb.Designer.design () in
  let table =
    Table.create
      ~columns:
        [
          ("FT op", Table.Left);
          ("gate (us)", Table.Right);
          ("EC (us)", Table.Right);
          ("designed (us)", Table.Right);
          ("Table 1 (us)", Table.Right);
        ]
  in
  List.iter2
    (fun (name, gate, ec) paper ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%.0f" gate;
          Printf.sprintf "%.0f" ec;
          Printf.sprintf "%.0f" (gate +. ec);
          Printf.sprintf "%.0f" paper;
        ])
    (Leqa_ulb.Designer.report d)
    [ 5440.0; 10940.0; 5240.0; 5240.0; 4930.0 ];
  Table.print table;
  Printf.printf
    "t_move = %.0f us (Table 1: 100)\n\
     \nthe paper treats these delays as given outputs of a 'ULB fabric\n\
     designer tool'; the leqa_ulb library rebuilds that tool from native\n\
     ion-trap instructions and the Steane [[7,1,3]] code.\n"
    d.Leqa_ulb.Designer.t_move

let sweep_fabric () =
  header "Fabric-size sweep (Section 3.3: size is an input to optimise)";
  let qodg =
    Qodg.of_ft_circuit
      (Decompose.to_ft (Leqa_benchmarks.Gf2_mult.circuit ~n:16 ()))
  in
  let table =
    Table.create
      ~columns:
        [
          ("fabric", Table.Left);
          ("LEQA D (s)", Table.Right);
          ("L_CNOT (us)", Table.Right);
          ("B (ULB^2)", Table.Right);
        ]
  in
  List.iter
    (fun side ->
      let params =
        Params.with_fabric Params.calibrated ~width:side ~height:side
      in
      let est = Estimator.estimate ~params qodg in
      Table.add_row table
        [
          Printf.sprintf "%dx%d" side side;
          Printf.sprintf "%.4f" est.Estimator.latency_s;
          Printf.sprintf "%.1f" est.Estimator.l_cnot_avg;
          Printf.sprintf "%.1f" est.Estimator.avg_zone_area;
        ])
    [ 8; 10; 15; 20; 30; 40; 60; 80; 120 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* perf: serial vs parallel engine, recorded as a JSON trajectory point *)
(* ------------------------------------------------------------------ *)

(* Times each hot path twice — default pool forced to 1 job, then to the
   requested width — with the coverage caches cleared before every cold
   measurement.  --scale 0 selects a seconds-not-minutes smoke variant
   (the @perf-smoke dune alias). *)

let time_at_jobs ~jobs f =
  Pool.set_default_jobs jobs;
  Coverage.clear_caches ();
  Timing.time_seconds f

let speedup ~serial ~parallel = serial /. Float.max 1e-9 parallel

let section_json ~extra ~serial ~parallel =
  Json.Obj
    ([
       ("serial_s", Json.Float serial);
       ("parallel_s", Json.Float parallel);
       ("speedup", Json.Float (speedup ~serial ~parallel));
     ]
    @ extra)

let perf ~scale ~out () =
  let smoke = scale <= 0.0 in
  let jobs_requested = Pool.default_jobs () in
  let cores = Pool.cores_detected () in
  (* honesty clamp, bench-local: the pool honours explicit widths
     verbatim, but timing more domains than cores measures
     oversubscription, not parallelism — so the parallel column runs at
     min(requested, cores) and the header records all three numbers *)
  let par_jobs = max 1 (min jobs_requested cores) in
  let eff_scale = if smoke then 0.1 else scale in
  header
    (Printf.sprintf
       "Perf: serial vs parallel engine   [requested %d, cores %d, \
        effective %d%s]"
       jobs_requested cores par_jobs
       (if smoke then ", smoke" else ""));
  let table =
    Table.create
      ~columns:
        [
          ("section", Table.Left);
          ("serial (s)", Table.Right);
          (Printf.sprintf "jobs=%d (s)" par_jobs, Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let row name serial parallel =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.4f" serial;
        Printf.sprintf "%.4f" parallel;
        Printf.sprintf "%.2fx" (speedup ~serial ~parallel);
      ]
  in
  (* 1. Eq-4/5 coverage kernel: a 40x40-fabric sweep over (B, Q) combos *)
  let width, height = if smoke then (20, 20) else (40, 40) in
  let combos =
    List.concat_map
      (fun avg_area ->
        List.map
          (fun qubits -> (avg_area, qubits))
          (if smoke then [ 24; 96 ] else [ 16; 32; 64; 128; 256 ]))
      (if smoke then [ 4.0; 12.0; 25.0 ]
       else [ 2.0; 4.0; 7.0; 11.0; 16.0; 22.0; 29.0; 37.0; 46.0; 56.0 ])
  in
  let reps = if smoke then 1 else 5 in
  let sweep () =
    for _ = 1 to reps do
      Coverage.clear_caches ();
      ignore
        (Pool.map_list (Pool.get_default ())
           ~f:(fun (avg_area, qubits) ->
             Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid
               ~avg_area ~width ~height ~qubits ~terms:20)
           combos)
    done
  in
  let sweep_serial = time_at_jobs ~jobs:1 sweep in
  let sweep_parallel = time_at_jobs ~jobs:par_jobs sweep in
  let sweep_cached =
    (* same keys, caches warm: the memoization payoff for repeated sweeps *)
    Timing.time_seconds (fun () ->
        ignore
          (Pool.map_list (Pool.get_default ())
             ~f:(fun (avg_area, qubits) ->
               Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid
                 ~avg_area ~width ~height ~qubits ~terms:20)
             combos))
  in
  row
    (Printf.sprintf "coverage sweep (%dx%d, %d combos x%d)" width height
       (List.length combos) reps)
    sweep_serial sweep_parallel;
  (* 2. LEQA estimation fan-out across the benchmark suite *)
  let entries = if smoke then List.filteri (fun i _ -> i < 6) Suite.all else Suite.all in
  let qodgs =
    List.map
      (fun e ->
        ( e.Suite.name,
          Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale:eff_scale)) ))
      entries
  in
  let estimate_all () =
    Pool.map_list (Pool.get_default ())
      ~f:(fun (name, qodg) ->
        (name, Estimator.estimate ~params:Params.calibrated qodg))
      qodgs
  in
  let est_serial = time_at_jobs ~jobs:1 (fun () -> ignore (estimate_all ())) in
  Pool.set_default_jobs par_jobs;
  Coverage.clear_caches ();
  let estimates, est_parallel = Timing.time estimate_all in
  row
    (Printf.sprintf "LEQA estimation (%d benchmarks)" (List.length qodgs))
    est_serial est_parallel;
  (* 3. QSPR validation fan-out (the expensive baseline LEQA replaces) *)
  let qspr_qodgs = List.filteri (fun i _ -> i < if smoke then 3 else 8) qodgs in
  let qspr_all () =
    ignore
      (Pool.map_list (Pool.get_default ())
         ~f:(fun (_, qodg) -> Qspr.run qodg)
         qspr_qodgs)
  in
  let qspr_serial = time_at_jobs ~jobs:1 qspr_all in
  let qspr_parallel = time_at_jobs ~jobs:par_jobs qspr_all in
  row
    (Printf.sprintf "QSPR validation (%d benchmarks)" (List.length qspr_qodgs))
    qspr_serial qspr_parallel;
  (* 4. Monte-Carlo queueing replications, with a determinism check *)
  let replications = if smoke then 8 else 40 in
  let horizon = if smoke then 20_000.0 else 200_000.0 in
  let mc ~jobs =
    Pool.set_default_jobs jobs;
    Timing.time (fun () ->
        Simulate.summarize
          (Simulate.run_replications ~seed:1303 ~replications ~lambda:1.5
             ~mu_per_server:2.0 ~servers:2 ~horizon ()))
  in
  let mc_serial_stats, mc_serial = mc ~jobs:1 in
  let mc_parallel_stats, mc_parallel = mc ~jobs:par_jobs in
  let mc_deterministic = mc_serial_stats = mc_parallel_stats in
  row
    (Printf.sprintf "Monte-Carlo M/M/c (%d replications)" replications)
    mc_serial mc_parallel;
  (* 5. differential harness: case evaluation fans across the pool with
     cost-weighted chunks (shrinking skipped — these cases pass) *)
  let diff_cases =
    Leqa_diff.Harness.random_cases ~seed:7
      ~count:(if smoke then 4 else 12)
      ()
  in
  let diff_run () =
    ignore (Leqa_diff.Harness.run ~shrink:false diff_cases)
  in
  let diff_serial = time_at_jobs ~jobs:1 diff_run in
  let diff_parallel = time_at_jobs ~jobs:par_jobs diff_run in
  row
    (Printf.sprintf "diff harness (%d cases)" (List.length diff_cases))
    diff_serial diff_parallel;
  Table.print table;
  (* 6. streaming QODG: a large circuit estimated without materializing
     the FT circuit — the latency must be bit-identical to the
     materialized path and the frontier's peak resident gate count must
     stay bounded by the wire count, never the op count.  Checked on
     every run (no multicore needed). *)
  let stream_n = if smoke then 64 else 128 in
  let stream_circ = Leqa_benchmarks.Gf2_mult.circuit ~n:stream_n () in
  Coverage.clear_caches ();
  let mat_est, mat_s =
    Timing.time (fun () ->
        Estimator.estimate_circuit ~params:Params.calibrated
          (Decompose.to_ft stream_circ))
  in
  Coverage.clear_caches ();
  let streamed, stream_s =
    Timing.time (fun () ->
        Estimator.estimate_stream ~params:Params.calibrated
          (Estimator.stream_of_circuit stream_circ))
  in
  let stream_stats = streamed.Estimator.stream_stats in
  let stream_ops = stream_stats.Leqa_circuit.Ft_circuit.num_gates in
  let stream_qubits = stream_stats.Leqa_circuit.Ft_circuit.num_qubits in
  let stream_peak = streamed.Estimator.stream_peak_gates in
  let mat_stats =
    Leqa_circuit.Ft_circuit.stats (Decompose.to_ft stream_circ)
  in
  let stream_identical =
    mat_est.Estimator.latency_us
    = streamed.Estimator.stream_breakdown.Estimator.latency_us
    && mat_stats = stream_stats
  in
  let stream_bounded = stream_peak <= stream_qubits in
  Printf.printf
    "\nstreaming QODG (gf2^%dmult, %d FT ops, %d wires):\n\
    \  materialized %.4f s   streamed %.4f s   peak resident gates %d\n\
    \  latency identical: %b   peak bounded by wires: %b\n"
    stream_n stream_ops stream_qubits mat_s stream_s stream_peak
    stream_identical stream_bounded;
  if not (stream_identical && stream_bounded) then begin
    prerr_endline
      "FAIL: streaming estimate diverged from the materialized path or \
       exceeded the resident-gate bound";
    exit 1
  end;
  (* the speedup gate: with >= 2 effective domains, at least 3
     pool-engaged sections must clear 1.5x; on a single-core box the
     comparison is physically meaningless, so the gate records itself as
     skipped instead of asserting *)
  let gate_threshold = 1.5 in
  let gate_required = 3 in
  let gated_sections =
    [
      ("coverage_sweep", speedup ~serial:sweep_serial ~parallel:sweep_parallel);
      ("suite_estimation", speedup ~serial:est_serial ~parallel:est_parallel);
      ("qspr_validation", speedup ~serial:qspr_serial ~parallel:qspr_parallel);
      ("monte_carlo", speedup ~serial:mc_serial ~parallel:mc_parallel);
      ("diff_harness", speedup ~serial:diff_serial ~parallel:diff_parallel);
    ]
  in
  let gate_active = par_jobs >= 2 in
  let gate_passing =
    List.filter (fun (_, s) -> s >= gate_threshold) gated_sections
  in
  let gate_ok = (not gate_active) || List.length gate_passing >= gate_required in
  let gate_status =
    if not gate_active then "skipped (single core)"
    else if gate_ok then "passed"
    else "failed"
  in
  Printf.printf
    "\nspeedup gate (>= %.1fx on >= %d of %d pool-engaged sections at %d \
     domains): %s\n"
    gate_threshold gate_required
    (List.length gated_sections)
    par_jobs gate_status;
  if not gate_ok then begin
    Printf.eprintf
      "FAIL: only %d of %d pool-engaged sections reached %.1fx at %d domains\n"
      (List.length gate_passing)
      (List.length gated_sections)
      gate_threshold par_jobs;
    exit 1
  end;
  (* 5. numeric-guard overhead: the same cold coverage sweep with the
     kernel-boundary checks (Error.check_finite & co) disabled vs active.  Best-of-N
     at jobs=1 so the measurement isn't dominated by pool scheduling
     noise; the budget is < 3% (or a sub-20ms absolute delta, which is
     below the timer noise floor on the smoke workload). *)
  let guard_reps = if smoke then 3 else 7 in
  (* paired design: each iteration times an unguarded/guarded pair
     back-to-back, so clock drift and cache warmup hit both equally; the
     median of the per-pair deltas is robust to the odd noisy rep.  A
     failing verdict triggers up to two more measurement rounds (median
     over ALL pairs): a genuine regression still fails, a scheduler noise
     spike does not. *)
  let deltas = ref [] and unguarded_best = ref infinity in
  let measure_round () =
    for _ = 1 to guard_reps do
      let u =
        Fun.protect
          ~finally:(fun () -> Leqa_util.Error.set_guards true)
          (fun () ->
            Leqa_util.Error.set_guards false;
            time_at_jobs ~jobs:1 sweep)
      in
      let g = time_at_jobs ~jobs:1 sweep in
      deltas := (g -. u) :: !deltas;
      if u < !unguarded_best then unguarded_best := u
    done
  in
  let verdict () =
    let sorted = List.sort compare !deltas in
    let median = List.nth sorted (List.length sorted / 2) in
    let pct = 100.0 *. median /. Float.max 1e-9 !unguarded_best in
    (median, pct, pct < 3.0 || median < 0.005)
  in
  measure_round ();
  let rounds = ref 1 in
  while (let _, _, ok = verdict () in not ok) && !rounds < 3 do
    incr rounds;
    measure_round ()
  done;
  let median_delta, overhead_pct, guards_within_budget = verdict () in
  let unguarded = !unguarded_best in
  let guarded = unguarded +. median_delta in
  Printf.printf
    "\nnumeric-guard overhead (coverage sweep, median of %d paired reps):\n\
    \  unguarded %.4f s   guarded %.4f s   overhead %+.2f%%   within < 3%% budget: %b\n"
    (List.length !deltas) unguarded guarded overhead_pct guards_within_budget;
  if not guards_within_budget then begin
    prerr_endline "FAIL: numeric-guard overhead exceeds the 3% budget";
    exit 1
  end;
  Printf.printf
    "\ncoverage sweep warm-cache rerun: %.4f s (%.1fx vs cold parallel)\n\
     Monte-Carlo statistics identical at jobs=1 and jobs=%d: %b\n"
    sweep_cached
    (speedup ~serial:sweep_parallel ~parallel:(sweep_cached *. float_of_int reps))
    par_jobs mc_deterministic;
  (* 6. telemetry overhead.  With no ambient registry installed every
     kernel probe (cache hit/miss, deadline check, pool chunk, binomial
     table reuse) is one ref read and a branch; measure that probe
     directly, count how many probes one estimate fires, and express
     their combined cost as a fraction of the estimate's runtime.  The
     budget is < 1%.  The collecting-mode estimate (registry installed,
     phase spans on) is reported informationally. *)
  let module Telemetry = Leqa_util.Telemetry in
  Telemetry.uninstall ();
  let tele_qodg =
    Qodg.of_ft_circuit
      (Decompose.to_ft
         (Leqa_benchmarks.Gf2_mult.circuit ~n:(if smoke then 8 else 16) ()))
  in
  let probes = if smoke then 2_000_000 else 10_000_000 in
  let probe_total_s =
    Timing.time_seconds (fun () ->
        for _ = 1 to probes do
          Telemetry.ambient_count "bench.telemetry.probe"
        done)
  in
  let probe_ns = probe_total_s /. float_of_int probes *. 1e9 in
  Coverage.clear_caches ();
  let est_off_s =
    Timing.time_seconds (fun () ->
        ignore (Estimator.estimate ~params:Params.calibrated tele_qodg))
  in
  let treg = Telemetry.create () in
  Telemetry.install treg;
  Coverage.clear_caches ();
  let est_on_s =
    Fun.protect
      ~finally:(fun () -> Telemetry.uninstall ())
      (fun () ->
        Timing.time_seconds (fun () ->
            ignore
              (Estimator.estimate ~telemetry:treg ~params:Params.calibrated
                 tele_qodg)))
  in
  (* event counters record one increment per probe; the *_us counters
     accumulate microseconds via count_n and are not probe counts *)
  let probes_per_estimate =
    List.fold_left
      (fun acc (name, v) ->
        if Filename.check_suffix name "_us" then acc else acc + v)
      0 (Telemetry.counters treg)
  in
  let off_cost_s = float_of_int probes_per_estimate *. probe_ns *. 1e-9 in
  let off_pct = 100.0 *. off_cost_s /. Float.max 1e-9 est_off_s in
  let telemetry_within_budget = off_pct < 1.0 in
  let on_pct = 100.0 *. (est_on_s -. est_off_s) /. Float.max 1e-9 est_off_s in
  Printf.printf
    "\ntelemetry probe (ambient sink uninstalled): %.2f ns/probe\n\
    \  %d probes per estimate -> %.2e s of a %.4f s estimate (%.4f%%)\n\
    \  within < 1%% budget: %b   (collecting mode: %+.1f%%, %d spans)\n"
    probe_ns probes_per_estimate off_cost_s est_off_s off_pct
    telemetry_within_budget on_pct
    (List.length (Telemetry.spans treg));
  if not telemetry_within_budget then begin
    prerr_endline "FAIL: telemetry-off overhead exceeds the 1% budget";
    exit 1
  end;
  let json =
    Json.Obj
      [
        ("pr", Json.Int 6);
        ("label", Json.String "contention-free parallel kernels");
        ("jobs_requested", Json.Int jobs_requested);
        ("cores_detected", Json.Int cores);
        ("jobs_effective", Json.Int par_jobs);
        ("smoke", Json.Bool smoke);
        ("scale", Json.Float eff_scale);
        ( "coverage_sweep",
          section_json ~serial:sweep_serial ~parallel:sweep_parallel
            ~extra:
              [
                ("fabric", Json.String (Printf.sprintf "%dx%d" width height));
                ("combos", Json.Int (List.length combos));
                ("reps", Json.Int reps);
                ("warm_cache_s", Json.Float sweep_cached);
              ] );
        ( "suite_estimation",
          section_json ~serial:est_serial ~parallel:est_parallel
            ~extra:[ ("benchmarks", Json.Int (List.length qodgs)) ] );
        ( "qspr_validation",
          section_json ~serial:qspr_serial ~parallel:qspr_parallel
            ~extra:[ ("benchmarks", Json.Int (List.length qspr_qodgs)) ] );
        ( "monte_carlo",
          section_json ~serial:mc_serial ~parallel:mc_parallel
            ~extra:
              [
                ("replications", Json.Int replications);
                ("deterministic", Json.Bool mc_deterministic);
                ( "mean_sojourn_time",
                  Json.Float mc_parallel_stats.Simulate.mean_sojourn_time );
              ] );
        ( "diff_harness",
          section_json ~serial:diff_serial ~parallel:diff_parallel
            ~extra:[ ("cases", Json.Int (List.length diff_cases)) ] );
        ( "streaming_qodg",
          Json.Obj
            [
              ("circuit", Json.String (Printf.sprintf "gf2^%dmult" stream_n));
              ("operations", Json.Int stream_ops);
              ("qubits", Json.Int stream_qubits);
              ("peak_resident_gates", Json.Int stream_peak);
              ("materialized_s", Json.Float mat_s);
              ("streamed_s", Json.Float stream_s);
              ("identical", Json.Bool stream_identical);
              ("peak_bounded", Json.Bool stream_bounded);
            ] );
        ( "speedup_gate",
          Json.Obj
            [
              ("threshold", Json.Float gate_threshold);
              ("required_sections", Json.Int gate_required);
              ("status", Json.String gate_status);
              ( "sections",
                Json.Obj
                  (List.map
                     (fun (name, s) -> (name, Json.Float s))
                     gated_sections) );
            ] );
        ( "guard_overhead",
          Json.Obj
            [
              ("unguarded_s", Json.Float unguarded);
              ("guarded_s", Json.Float guarded);
              ("overhead_pct", Json.Float overhead_pct);
              ("within_budget", Json.Bool guards_within_budget);
            ] );
        ( "telemetry",
          Json.Obj
            [
              ("probe_ns", Json.Float probe_ns);
              ("probes_per_estimate", Json.Int probes_per_estimate);
              ("estimate_off_s", Json.Float est_off_s);
              ("estimate_on_s", Json.Float est_on_s);
              ("off_overhead_pct", Json.Float off_pct);
              ("on_overhead_pct", Json.Float on_pct);
              ("within_budget", Json.Bool telemetry_within_budget);
              ("spans", Json.Int (List.length (Telemetry.spans treg)));
              ( "counters",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.Int v))
                     (Telemetry.counters treg)) );
            ] );
        ( "per_benchmark",
          Json.List
            (List.map
               (fun (name, est) ->
                 Json.Obj
                   [
                     ("benchmark", Json.String name);
                     ("estimated_s", Json.Float est.Estimator.latency_s);
                     ("qubits", Json.Int est.Estimator.qubits);
                     ("operations", Json.Int est.Estimator.operations);
                   ])
               estimates) );
      ]
  in
  Json.write_file out json;
  Printf.printf "[wrote %s]\n" out

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table/figure              *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (one kernel per table/figure)";
  let open Bechamel in
  let ham3_qodg =
    Qodg.of_ft_circuit (Decompose.to_ft (Leqa_benchmarks.Hamming.ham3 ()))
  in
  let gf2_circ = Leqa_benchmarks.Gf2_mult.circuit ~n:16 () in
  let gf2_ft = Decompose.to_ft gf2_circ in
  let gf2_qodg = Qodg.of_ft_circuit gf2_ft in
  let gf2_iig = Iig.of_qodg gf2_qodg in
  let tests =
    [
      (* Table 2 kernels *)
      Test.make ~name:"table2/leqa-estimate-gf2^16"
        (Staged.stage (fun () ->
             Estimator.estimate ~params:Params.calibrated gf2_qodg));
      Test.make ~name:"table2/qspr-map-ham3"
        (Staged.stage (fun () -> Qspr.run ham3_qodg));
      (* Table 3 kernel: what LEQA spends per op *)
      Test.make ~name:"table3/qodg-build-gf2^16"
        (Staged.stage (fun () -> Qodg.of_ft_circuit gf2_ft));
      Test.make ~name:"table3/critical-path-gf2^16"
        (Staged.stage (fun () ->
             Critical_path.compute gf2_qodg
               ~delay:(Params.gate_delay Params.default)));
      Test.make ~name:"table3/decompose-gf2^16"
        (Staged.stage (fun () -> Decompose.to_ft gf2_circ));
      (* Figure 3/4 kernel *)
      Test.make ~name:"fig4/coverage-E[Sq]-60x60"
        (Staged.stage (fun () ->
             Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid ~avg_area:25.0 ~width:60 ~height:60
               ~qubits:48 ~terms:20));
      (* Figure 5 kernel *)
      Test.make ~name:"fig5/mm1-congestion-curve"
        (Staged.stage (fun () ->
             for q = 0 to 50 do
               ignore (Mm1.congestion_delay ~nc:5 ~d_uncong:800.0 ~q)
             done));
      (* Eq 15 kernel *)
      Test.make ~name:"eq15/d-uncongested-gf2^16"
        (Staged.stage (fun () ->
             Leqa_core.Routing_latency.d_uncongested ~v:0.005 gf2_iig));
      (* IIG kernel (Algorithm 1, line 1) *)
      Test.make ~name:"alg1/iig-build-gf2^16"
        (Staged.stage (fun () -> Iig.of_qodg gf2_qodg));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Table.create
      ~columns:[ ("kernel", Table.Left); ("time/run", Table.Right) ]
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"leqa" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let pretty ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; pretty ns ])
    (List.sort compare !rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let workloads ~scale =
  header
    (Printf.sprintf "Workload characterisation   [scale %.2f]" scale);
  let table =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("qubits", Table.Right);
          ("ops", Table.Right);
          ("depth", Table.Right);
          ("par avg", Table.Right);
          ("par peak", Table.Right);
          ("CNOT %", Table.Right);
          ("B", Table.Right);
        ]
  in
  List.iter
    (fun e ->
      let qodg =
        Qodg.of_ft_circuit (Decompose.to_ft (Suite.build_scaled e ~scale))
      in
      let m = Leqa_qodg.Metrics.compute qodg in
      let iig = Iig.of_qodg qodg in
      Table.add_row table
        [
          e.Suite.name;
          string_of_int m.Leqa_qodg.Metrics.qubits;
          string_of_int m.Leqa_qodg.Metrics.operations;
          string_of_int m.Leqa_qodg.Metrics.depth;
          Printf.sprintf "%.1f" m.Leqa_qodg.Metrics.average_parallelism;
          string_of_int m.Leqa_qodg.Metrics.peak_parallelism;
          Printf.sprintf "%.0f" (100.0 *. m.Leqa_qodg.Metrics.cnot_fraction);
          Printf.sprintf "%.1f" (Leqa_core.Presence_zone.average_area iig);
        ])
    Suite.all;
  Table.print table;
  Printf.printf
    "\nB is the average presence-zone area (Eq 7): the gf2 family's dense\n\
     interaction graphs produce the large zones that stress the coverage\n\
     model, hwb's MCT ancillas produce many low-degree qubits.\n"

let tornado () =
  header "Parameter sensitivity (tornado, gf2^16mult, calibrated params)";
  let qodg =
    Qodg.of_ft_circuit
      (Decompose.to_ft (Leqa_benchmarks.Gf2_mult.circuit ~n:16 ()))
  in
  let table =
    Table.create
      ~columns:
        [
          ("parameter", Table.Left);
          ("base value", Table.Right);
          ("elasticity (%D / %param)", Table.Right);
        ]
  in
  List.iter
    (fun e ->
      Table.add_row table
        [
          e.Leqa_core.Sensitivity.parameter;
          Printf.sprintf "%g" e.Leqa_core.Sensitivity.base_value;
          Printf.sprintf "%+.3f" e.Leqa_core.Sensitivity.elasticity;
        ])
    (Leqa_core.Sensitivity.tornado ~params:Params.calibrated qodg);
  Table.print table;
  Printf.printf
    "\neach row cost two estimator calls; a QECC designer reads this as\n\
     'which physical parameter buys the most latency if improved'.\n"

(* ------------------------------------------------------------------ *)

(* Estimation-server baseline: cold vs warm content-addressed cache,
   sustained request throughput and tail latency, driving the engine
   in-process (no pipe noise in the numbers).  Requests are handled on
   this thread so each gets a telemetry span — the per-request server
   overhead is then directly visible as the warm-phase latency, where
   no estimation happens at all. *)
let serve_bench ~scale ~out () =
  let smoke = scale <= 0.0 in
  let jobs = Pool.default_jobs () in
  header
    (Printf.sprintf "Estimation server: cache + throughput   [jobs %d%s]"
       jobs
       (if smoke then ", smoke" else ""));
  let treg = Telemetry.create () in
  Telemetry.install treg;
  let engine = Engine.create (Engine.default_config ~binary_version:"bench") in
  let benches =
    if smoke then [ "qft:4"; "qft:5"; "grover:3" ]
    else [ "qft:6"; "qft:8"; "qft:10"; "qft-adder:6"; "grover:4"; "grover:5" ]
  in
  let widths = if smoke then [ 40; 60 ] else [ 30; 40; 60; 80 ] in
  let requests =
    List.concat_map
      (fun bench ->
        List.map
          (fun width ->
            {
              Protocol.id = Json.Null;
              version = Protocol.V1;
              body =
                Protocol.Estimate
                  {
                    Protocol.source = Source.Bench { name = bench; scale = 1.0 };
                    width;
                    height = width;
                    v = Some Params.calibrated.Params.v;
                    conventions = Leqa_core.Calib_tables.Fitted;
                    terms = 20;
                    deadline_s = None;
                  };
            })
          widths)
      benches
  in
  let n_distinct = List.length requests in
  let run_phase label =
    List.map
      (fun req ->
        let resp, dt =
          Timing.time (fun () ->
              Telemetry.span treg label (fun () -> Engine.handle engine req))
        in
        (match Json.member "ok" resp with
        | Some (Json.Bool true) -> ()
        | _ ->
          prerr_endline ("FAIL: server error during bench: " ^ Json.to_string resp);
          exit 1);
        dt)
      requests
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let summarize lats =
    let a = Array.of_list lats in
    Array.sort compare a;
    let total = Array.fold_left ( +. ) 0.0 a in
    (total, 1e3 *. percentile a 0.50, 1e3 *. percentile a 0.99)
  in
  (* cold: every request computes; warm: every request is a cache hit *)
  let cold_total, cold_p50, cold_p99 = summarize (run_phase "server.cold") in
  let warm_total, warm_p50, warm_p99 = summarize (run_phase "server.warm") in
  let speedup = cold_total /. Float.max 1e-9 warm_total in
  let speedup_ok = speedup >= 5.0 in
  Printf.printf
    "cold: %d requests in %.4f s (p50 %.3f ms, p99 %.3f ms)\n\
     warm: %d requests in %.4f s (p50 %.3f ms, p99 %.3f ms)\n\
     warm-cache speedup: %.1fx   within >= 5x target: %b\n"
    n_distinct cold_total cold_p50 cold_p99 n_distinct warm_total warm_p50
    warm_p99 speedup speedup_ok;
  (* sustained: round-robin over the warm set, wall-clock throughput *)
  let sustained_n = if smoke then 500 else 5_000 in
  let reqs = Array.of_list requests in
  let lats = Array.make sustained_n 0.0 in
  let _, wall_s =
    Timing.time (fun () ->
        for i = 0 to sustained_n - 1 do
          let _, dt =
            Timing.time (fun () ->
                Engine.handle engine reqs.(i mod Array.length reqs))
          in
          lats.(i) <- dt
        done)
  in
  Array.sort compare lats;
  let rps = float_of_int sustained_n /. Float.max 1e-9 wall_s in
  let sus_p50 = 1e3 *. percentile lats 0.50 in
  let sus_p99 = 1e3 *. percentile lats 0.99 in
  Printf.printf
    "sustained: %d requests in %.3f s -> %.0f req/s (p50 %.4f ms, p99 %.4f ms)\n"
    sustained_n wall_s rps sus_p50 sus_p99;
  let counter name = Telemetry.counter_value treg name in
  Printf.printf
    "result cache: %d hits / %d misses   prep cache: %d hits / %d misses\n"
    (counter "cache.server.result.hit")
    (counter "cache.server.result.miss")
    (counter "cache.server.prep.hit")
    (counter "cache.server.prep.miss");
  Telemetry.uninstall ();
  let span_count label =
    List.length
      (List.filter
         (fun s -> s.Telemetry.name = label)
         (Telemetry.spans treg))
  in
  let stats = Engine.stats_json engine in
  let member_exn k j = Option.get (Json.member k j) in
  let json =
    Json.Obj
      [
        ("pr", Json.Int 4);
        ("label", Json.String "estimation server");
        ("jobs", Json.Int jobs);
        ("smoke", Json.Bool smoke);
        ("distinct_requests", Json.Int n_distinct);
        ( "cold",
          Json.Obj
            [
              ("total_s", Json.Float cold_total);
              ("p50_ms", Json.Float cold_p50);
              ("p99_ms", Json.Float cold_p99);
            ] );
        ( "warm",
          Json.Obj
            [
              ("total_s", Json.Float warm_total);
              ("p50_ms", Json.Float warm_p50);
              ("p99_ms", Json.Float warm_p99);
              ("speedup", Json.Float speedup);
              ("within_target", Json.Bool speedup_ok);
              (* a warm hit does no estimation: its latency IS the
                 server's own per-request overhead *)
              ("server_overhead_p50_ms", Json.Float warm_p50);
            ] );
        ( "sustained",
          Json.Obj
            [
              ("requests", Json.Int sustained_n);
              ("wall_s", Json.Float wall_s);
              ("rps", Json.Float rps);
              ("p50_ms", Json.Float sus_p50);
              ("p99_ms", Json.Float sus_p99);
            ] );
        ( "cache",
          Json.Obj
            [
              ("result", member_exn "result_cache" stats);
              ("prep", member_exn "prep_cache" stats);
            ] );
        ( "telemetry",
          Json.Obj
            [
              ("cold_spans", Json.Int (span_count "server.cold"));
              ("warm_spans", Json.Int (span_count "server.warm"));
              ( "result_cache_hits",
                Json.Int (counter "cache.server.result.hit") );
              ( "result_cache_misses",
                Json.Int (counter "cache.server.result.miss") );
              ("prep_cache_hits", Json.Int (counter "cache.server.prep.hit"));
              ( "prep_cache_misses",
                Json.Int (counter "cache.server.prep.miss") );
            ] );
      ]
  in
  Json.write_file out json;
  Printf.printf "[wrote %s]\n" out;
  if not speedup_ok then begin
    prerr_endline "FAIL: warm-cache speedup below the 5x target";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Chaos baseline: availability and tail latency of the supervised
   multi-worker fleet while workers are SIGKILLed mid-soak, plus the
   warm-restart ratio of the persistent result store.  Unlike
   serve_bench this drives the real binary over a Unix socket — the
   supervision, sharding and store paths are exactly the production
   ones.  Writes BENCH_PR7.json. *)
let chaos_bench ~scale ~out () =
  let smoke = scale <= 0.0 in
  header
    (Printf.sprintf "Chaos: availability under worker SIGKILL%s"
       (if smoke then "   [smoke]" else ""));
  let cli =
    match Sys.getenv_opt "LEQA_CLI" with
    | Some p -> p
    | None ->
      (* dune puts bench/main.exe and bin/leqa_cli.exe side by side *)
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "leqa_cli.exe"))
  in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf
      "chaos: leqa CLI not found at %s (set $LEQA_CLI or run via dune)\n" cli;
    exit 2
  end;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let scratch = Filename.temp_file "leqa_chaos_bench" "" in
  Sys.remove scratch;
  Unix.mkdir scratch 0o755;
  let sock = Filename.concat scratch "bench.sock" in
  let store = Filename.concat scratch "store" in
  let log = Filename.concat scratch "server.log" in
  let workers = 4 in
  let spawn () =
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let logfd =
      Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let pid =
      Unix.create_process cli
        [| "leqa"; "serve"; "--socket"; sock; "--workers";
           string_of_int workers; "--store"; store |]
        devnull Unix.stdout logfd
    in
    Unix.close devnull;
    Unix.close logfd;
    let deadline = Unix.gettimeofday () +. 15.0 in
    let rec wait () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> Unix.close fd
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then begin
          prerr_endline "chaos: fleet never came up";
          exit 1
        end;
        Unix.sleepf 0.05;
        wait ()
    in
    wait ();
    pid
  in
  let stop pid =
    Unix.kill pid Sys.sigterm;
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, status ->
      let detail =
        match status with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s | Unix.WSTOPPED s -> Printf.sprintf "signal %d" s
      in
      Printf.eprintf "chaos: fleet did not drain cleanly (%s)\n" detail;
      exit 1
  in
  let cases =
    [ "qft:3"; "qft:4"; "qft:5"; "qft:6"; "grover:2"; "grover:3"; "grover:4";
      "qft-adder:3"; "qft-adder:4"; "qft-adder:5"; "qft:7"; "grover:5" ]
  in
  let n_cases = List.length cases in
  let request_of ~id case =
    Printf.sprintf
      "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"estimate\",\"params\":{\"bench\":%S,\"width\":60,\"terms\":20}}"
      id case
  in
  let send oc line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let parse line =
    match Json.of_string line with Ok j -> Some j | Error _ -> None
  in
  let is_ok resp = Json.member "ok" resp = Some (Json.Bool true) in
  let cache_of resp =
    match Json.member "cache" resp with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let int_member key j =
    match Json.member key j with Some (Json.Int n) -> Some n | _ -> None
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  (* ---- phase 1: soak with kills ---- *)
  let total = if smoke then 300 else 1200 in
  let kill_every = if smoke then 100 else 200 in
  let pid = spawn () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let get_stats () =
    send oc
      (Printf.sprintf
         "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"stats\"}"
         (fresh_id ()));
    Option.bind (parse (input_line ic)) (Json.member "stats")
  in
  let ok_count = ref 0 and err_count = ref 0 in
  let hit = ref 0 and warm = ref 0 and miss = ref 0 in
  let kills = ref 0 in
  let lats = Array.make total 0.0 in
  for i = 0 to total - 1 do
    if i > 0 && i mod kill_every = 0 then begin
      match Option.map (Json.member "worker_pids") (get_stats ()) with
      | Some (Some (Json.List pids)) -> (
        let pids =
          List.filter_map
            (function Json.Int p when p > 1 -> Some p | _ -> None)
            pids
        in
        match pids with
        | [] -> ()
        | _ ->
          incr kills;
          let victim = List.nth pids (!kills mod List.length pids) in
          (try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ()))
      | _ -> ()
    end;
    let id = fresh_id () in
    let resp, dt =
      Timing.time (fun () ->
          send oc (request_of ~id (List.nth cases (id mod n_cases)));
          input_line ic)
    in
    lats.(i) <- dt;
    match parse resp with
    | Some r when is_ok r ->
      incr ok_count;
      (match cache_of r with
      | Some "hit" -> incr hit
      | Some "warm" -> incr warm
      | _ -> incr miss)
    | _ -> incr err_count
  done;
  (* the last kill's restart sits behind backoff: poll to convergence *)
  let rec settled tries =
    match get_stats () with
    | None -> None
    | Some stats ->
      let restarts = Option.value (int_member "restarts" stats) ~default:0 in
      if restarts >= !kills || tries <= 0 then Some stats
      else begin
        Unix.sleepf 0.2;
        settled (tries - 1)
      end
  in
  let stats = settled 50 in
  let stat key =
    Option.value
      (Option.bind stats (int_member key))
      ~default:(-1)
  in
  let restarts = stat "restarts" in
  let retried = stat "retried" in
  let lost = stat "lost" in
  Unix.close fd;
  stop pid;
  Array.sort compare lats;
  let p50 = 1e3 *. percentile lats 0.50 in
  let p99 = 1e3 *. percentile lats 0.99 in
  let availability = float_of_int !ok_count /. float_of_int total in
  Printf.printf
    "soak: %d requests, %d worker kills: %d ok, %d errors \
     (availability %.4f)\n\
     latency p50 %.3f ms, p99 %.3f ms   cache %d hit / %d warm / %d miss\n\
     supervisor: %d restarts, %d retried, %d lost\n"
    total !kills !ok_count !err_count availability p50 p99 !hit !warm !miss
    restarts retried lost;
  (* ---- phase 2: warm restart from the persistent store ---- *)
  let pid = spawn () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let warm_hits = ref 0 and warm_ok = ref 0 in
  let warm_lats =
    List.mapi
      (fun i case ->
        let resp, dt =
          Timing.time (fun () ->
              send oc (request_of ~id:i case);
              input_line ic)
        in
        (match parse resp with
        | Some r when is_ok r ->
          incr warm_ok;
          if cache_of r = Some "warm" then incr warm_hits
        | _ -> ());
        dt)
      cases
  in
  Unix.close fd;
  stop pid;
  let warm_ratio = float_of_int !warm_hits /. float_of_int n_cases in
  let warm_arr = Array.of_list warm_lats in
  Array.sort compare warm_arr;
  let warm_p50 = 1e3 *. percentile warm_arr 0.50 in
  Printf.printf
    "warm restart: %d of %d distinct circuits served from the store \
     (ratio %.2f, p50 %.3f ms)\n"
    !warm_hits n_cases warm_ratio warm_p50;
  let zero_failures = !err_count = 0 && !warm_ok = n_cases && lost = 0 in
  let warm_within_target = warm_ratio >= 0.9 in
  Printf.printf
    "zero client-visible failures: %b   warm-hit ratio >= 0.9: %b\n"
    zero_failures warm_within_target;
  let json =
    Json.Obj
      [
        ("pr", Json.Int 7);
        ("label", Json.String "fault-tolerant multi-worker serving");
        ("workers", Json.Int workers);
        ("smoke", Json.Bool smoke);
        ( "soak",
          Json.Obj
            [
              ("requests", Json.Int total);
              ("worker_kills", Json.Int !kills);
              ("ok", Json.Int !ok_count);
              ("errors", Json.Int !err_count);
              ("availability", Json.Float availability);
              ("p50_ms", Json.Float p50);
              ("p99_ms", Json.Float p99);
              ( "cache",
                Json.Obj
                  [
                    ("hit", Json.Int !hit);
                    ("warm", Json.Int !warm);
                    ("miss", Json.Int !miss);
                  ] );
              ("restarts", Json.Int restarts);
              ("retried", Json.Int retried);
              ("lost", Json.Int lost);
            ] );
        ( "warm_restart",
          Json.Obj
            [
              ("distinct_circuits", Json.Int n_cases);
              ("warm_hits", Json.Int !warm_hits);
              ("ratio", Json.Float warm_ratio);
              ("p50_ms", Json.Float warm_p50);
              ("within_target", Json.Bool warm_within_target);
            ] );
        ("zero_client_visible_failures", Json.Bool zero_failures);
      ]
  in
  Json.write_file out json;
  Printf.printf "[wrote %s]\n" out;
  if not (zero_failures && warm_within_target) then begin
    prerr_endline
      "FAIL: chaos soak saw client-visible failures or a cold restart";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Incremental re-estimation: estimate-delta vs full recompute for
   <= 8-gate edit batches — the mapper-loop workload the rpc-v2 session
   API exists for.  Each round edits the held circuit the way a mapper
   does (appended gates plus a tweak near the end), then re-estimates
   once incrementally on the live Delta session and once from scratch
   (fresh IIG build + full critical-path fold + coverage integral over
   the same FT gates).  The two breakdowns must agree bit-for-bit;
   aggregate speedup must be >= 5x for single-qubit frontier batches
   and >= 4x for CNOT-bearing ones (whose delay-signature change used
   to discard every checkpoint; the fold must now re-base instead of
   refolding from gate 0).  Writes BENCH_PR10.json with a `serve`
   section from the multi-connection open-loop load client (saturation
   req/s and p99 under overload) and, when a BENCH_PR6.json sits next
   to it (the CI delta job runs `bench perf` first), the PR 6 speedup
   gate's verdict — the first record of that gate actually firing on a
   multi-core runner.  *)
let delta_bench ~scale ~out () =
  let module Delta = Leqa_core.Delta in
  let module Ft_gate = Leqa_circuit.Ft_gate in
  let smoke = scale <= 0.0 in
  header
    (Printf.sprintf "Incremental re-estimation (estimate-delta)%s"
       (if smoke then "   [smoke]" else ""));
  let params = Params.calibrated in
  let config = Config.default in
  (* sized so held state matters: the fold and the IIG build are the
     O(gates) costs the session exists to avoid re-paying per edit *)
  let benches =
    if smoke then [ "qft:64"; "grover:8" ]
    else [ "qft:64"; "qft:96"; "qft:128"; "grover:7"; "grover:8"; "qft-adder:16" ]
  in
  let rounds = if smoke then 15 else 40 in
  let edits_per_round = 8 in
  let rng = Random.State.make [| 0x8ea7 |] in
  let incr_total = ref 0.0 in
  let full_total = ref 0.0 in
  let rows =
    List.map
      (fun name ->
        let circuit =
          match Source.load (Source.Bench { name; scale = 1.0 }) with
          | Ok c -> c
          | Error e ->
            prerr_endline ("delta: " ^ Leqa_util.Error.to_string e);
            exit 2
        in
        let live = Delta.of_ft_circuit (Decompose.to_ft circuit) in
        (* seed the session: the first estimate folds everything and
           writes the checkpoints later rounds restart from *)
        ignore (Delta.estimate ~config ~params live);
        let bench_incr = ref 0.0 and bench_full = ref 0.0 in
        for _round = 1 to rounds do
          (* the mapper-loop batch this path exists for: single-qubit
             polish near the working frontier.  These edits leave the
             IIG — and so the routing-latency averages and the fold's
             delay signature — untouched, which is exactly what lets
             the critical-path fold resume from a checkpoint instead of
             replaying all n gates.  Batches that touch the CNOT delay
             get their own measured section (and >= 4x gate) below. *)
          let rnd k = Random.State.int rng k in
          let w = Delta.num_wires live in
          for _ = 1 to edits_per_round - 2 do
            let kind = [| Ft_gate.T; Ft_gate.H; Ft_gate.S; Ft_gate.Tdg |].(rnd 4) in
            Delta.apply live
              (Delta.Add_gate
                 { at = None; gate = Ft_gate.Single (kind, rnd w) })
          done;
          (* one insertion a few positions back: shifts the suffix and
             moves [dirty_from] off the very end *)
          let n = Delta.gate_count live in
          Delta.apply live
            (Delta.Add_gate
               {
                 at = Some (n - rnd (min 8 n));
                 gate = Ft_gate.Single (Ft_gate.T, rnd w);
               });
          (* one removal from the last five positions — all appended
             singles after the batch above, so the IIG stays intact *)
          let n = Delta.gate_count live in
          Delta.apply live (Delta.Remove_gate { at = n - 1 - rnd (min 5 n) });
          (* warm the process-wide coverage caches for this round's key
             before either timed path runs, so the comparison measures
             the structural difference (IIG rebuild + full fold vs the
             incremental tail) and not which path happened to populate
             a shared cache first *)
          let ft_now = Decompose.to_ft (Delta.to_circuit live) in
          ignore (Delta.estimate ~config ~params (Delta.of_ft_circuit ft_now));
          let (est_incr, _), dt_incr =
            Timing.time (fun () -> Delta.estimate ~config ~params live)
          in
          bench_incr := !bench_incr +. dt_incr;
          (* full re-estimation of the same edited circuit: rebuild the
             session state from the materialized gates and estimate with
             nothing to reuse (the conversion itself is untimed) *)
          let est_full, dt_full =
            Timing.time (fun () ->
                let cold = Delta.of_ft_circuit ft_now in
                fst (Delta.estimate ~config ~params cold))
          in
          bench_full := !bench_full +. dt_full;
          if est_incr <> est_full then begin
            Printf.eprintf "FAIL: delta/full breakdown mismatch on %s\n" name;
            exit 1
          end
        done;
        incr_total := !incr_total +. !bench_incr;
        full_total := !full_total +. !bench_full;
        let speedup = !bench_full /. Float.max 1e-9 !bench_incr in
        Printf.printf
          "%-12s  %5d gates  %2d rounds  incr %7.3f ms/round  full %7.3f \
           ms/round  %5.1fx\n"
          name (Delta.gate_count live) rounds
          (1e3 *. !bench_incr /. float_of_int rounds)
          (1e3 *. !bench_full /. float_of_int rounds)
          speedup;
        Json.Obj
          [
            ("bench", Json.String name);
            ("gates", Json.Int (Delta.gate_count live));
            ("rounds", Json.Int rounds);
            ("incr_ms_per_round", Json.Float (1e3 *. !bench_incr /. float_of_int rounds));
            ("full_ms_per_round", Json.Float (1e3 *. !bench_full /. float_of_int rounds));
            ("speedup", Json.Float speedup);
          ])
      benches
  in
  let speedup = !full_total /. Float.max 1e-9 !incr_total in
  let speedup_ok = speedup >= 5.0 in
  Printf.printf "aggregate estimate-delta speedup: %.1fx   within >= 5x target: %b\n"
    speedup speedup_ok;
  (* CNOT-bearing frontier batches: the regression this bench now pins.
     Two of the eight edits splice CNOTs in near the frontier, so the
     CNOT delay — and with it the fold's delay signature — changes
     every round.  Before re-basable checkpoints that discarded every
     checkpoint and refolded from gate 0; now the fold re-bases the
     stored per-kind counts in O(kinds) and resumes, so the batch must
     still beat a cold re-estimate by >= 4x. *)
  let cnot_incr_total = ref 0.0 in
  let cnot_full_total = ref 0.0 in
  let rebased_rounds = ref 0 in
  let cnot_total_rounds = ref 0 in
  let cnot_rows =
    List.map
      (fun name ->
        let circuit =
          match Source.load (Source.Bench { name; scale = 1.0 }) with
          | Ok c -> c
          | Error e ->
            prerr_endline ("delta: " ^ Leqa_util.Error.to_string e);
            exit 2
        in
        let live = Delta.of_ft_circuit (Decompose.to_ft circuit) in
        ignore (Delta.estimate ~config ~params live);
        let bench_incr = ref 0.0 and bench_full = ref 0.0 in
        for _round = 1 to rounds do
          let rnd k = Random.State.int rng k in
          let w = Delta.num_wires live in
          for _ = 1 to edits_per_round - 2 do
            let kind = [| Ft_gate.T; Ft_gate.H; Ft_gate.S; Ft_gate.Tdg |].(rnd 4) in
            Delta.apply live
              (Delta.Add_gate
                 { at = None; gate = Ft_gate.Single (kind, rnd w) })
          done;
          (* the two edits that used to invalidate every checkpoint *)
          for _ = 1 to 2 do
            let control = rnd w in
            let target = (control + 1 + rnd (w - 1)) mod w in
            let n = Delta.gate_count live in
            Delta.apply live
              (Delta.Add_gate
                 {
                   at = Some (n - rnd (min 8 n));
                   gate = Ft_gate.Cnot { control; target };
                 })
          done;
          let ft_now = Decompose.to_ft (Delta.to_circuit live) in
          ignore (Delta.estimate ~config ~params (Delta.of_ft_circuit ft_now));
          let (est_incr, stats), dt_incr =
            Timing.time (fun () -> Delta.estimate ~config ~params live)
          in
          incr cnot_total_rounds;
          if stats.Delta.ds_fold_rebased then incr rebased_rounds;
          bench_incr := !bench_incr +. dt_incr;
          let est_full, dt_full =
            Timing.time (fun () ->
                let cold = Delta.of_ft_circuit ft_now in
                fst (Delta.estimate ~config ~params cold))
          in
          bench_full := !bench_full +. dt_full;
          if est_incr <> est_full then begin
            Printf.eprintf
              "FAIL: delta/full breakdown mismatch on %s (CNOT batch)\n" name;
            exit 1
          end
        done;
        cnot_incr_total := !cnot_incr_total +. !bench_incr;
        cnot_full_total := !cnot_full_total +. !bench_full;
        let speedup = !bench_full /. Float.max 1e-9 !bench_incr in
        Printf.printf
          "%-12s  %5d gates  %2d rounds  incr %7.3f ms/round  full %7.3f \
           ms/round  %5.1fx  [cnot]\n"
          name (Delta.gate_count live) rounds
          (1e3 *. !bench_incr /. float_of_int rounds)
          (1e3 *. !bench_full /. float_of_int rounds)
          speedup;
        Json.Obj
          [
            ("bench", Json.String name);
            ("gates", Json.Int (Delta.gate_count live));
            ("rounds", Json.Int rounds);
            ("incr_ms_per_round", Json.Float (1e3 *. !bench_incr /. float_of_int rounds));
            ("full_ms_per_round", Json.Float (1e3 *. !bench_full /. float_of_int rounds));
            ("speedup", Json.Float speedup);
          ])
      benches
  in
  let cnot_speedup = !cnot_full_total /. Float.max 1e-9 !cnot_incr_total in
  (* the gate is only meaningful if the re-based path actually carried
     the rounds: a zero count would mean we timed the old refold *)
  let cnot_ok = cnot_speedup >= 4.0 && !rebased_rounds > 0 in
  Printf.printf
    "aggregate CNOT-batch speedup: %.1fx  (%d/%d rounds re-based)   within >= \
     4x target: %b\n"
    cnot_speedup !rebased_rounds !cnot_total_rounds cnot_ok;
  (* the PR 6 speedup gate's verdict, if the perf bench ran first in
     this directory: every local BENCH_PR6.json ever written said
     "skipped (single core)", so CI copies the first real multi-core
     verdict here where the delta job's artifact upload preserves it *)
  let pr6_gate =
    let path =
      Option.value (Sys.getenv_opt "LEQA_PR6_JSON") ~default:"BENCH_PR6.json"
    in
    if not (Sys.file_exists path) then
      Json.Obj
        [
          ("status", Json.String "not measured (no BENCH_PR6.json)");
          ("source", Json.String path);
        ]
    else
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string (String.trim text) with
      | Ok j -> (
        match Json.member "speedup_gate" j with
        | Some gate ->
          Printf.printf "pr6 speedup gate (from %s): %s\n" path
            (Json.to_string gate);
          Json.Obj [ ("source", Json.String path); ("verdict", gate) ]
        | None ->
          Json.Obj
            [
              ("status", Json.String "unreadable (no speedup_gate member)");
              ("source", Json.String path);
            ])
      | Error e ->
        Json.Obj
          [
            ("status", Json.String ("unreadable: " ^ e));
            ("source", Json.String path);
          ]
  in
  (* the serve section: saturation throughput and p99-under-overload of
     a live server, measured by the open-loop multi-connection client *)
  let serve_section =
    let cli =
      match Sys.getenv_opt "LEQA_CLI" with
      | Some p -> p
      | None ->
        Filename.concat
          (Filename.dirname Sys.executable_name)
          (Filename.concat ".." (Filename.concat "bin" "leqa_cli.exe"))
    in
    if not (Sys.file_exists cli) then begin
      prerr_endline
        "delta: leqa CLI not found (set $LEQA_CLI or run via dune); serve \
         section skipped";
      Json.Obj [ ("skipped", Json.Bool true) ]
    end
    else begin
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let scratch = Filename.temp_file "leqa_delta_bench" "" in
      Sys.remove scratch;
      Unix.mkdir scratch 0o755;
      let sock = Filename.concat scratch "bench.sock" in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let nullout = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process cli
          [| "leqa"; "serve"; "--socket"; sock |]
          devnull nullout nullout
      in
      Unix.close devnull;
      Unix.close nullout;
      let deadline = Unix.gettimeofday () +. 15.0 in
      let rec wait () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX sock) with
        | () -> Unix.close fd
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
          Unix.close fd;
          if Unix.gettimeofday () > deadline then begin
            prerr_endline "delta: server never came up";
            exit 1
          end;
          Unix.sleepf 0.05;
          wait ()
      in
      wait ();
      let count = if smoke then 500 else 5_000 in
      let target_rps = 25_000.0 in
      let out_file = Filename.concat scratch "client.json" in
      let cmd =
        Printf.sprintf
          "%s client estimate -b qft:5 --socket %s --count %d --connections 4 \
           --open-loop %.0f >%s 2>/dev/null"
          (Filename.quote cli) (Filename.quote sock) count target_rps
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let load =
        if code <> 0 then begin
          Printf.eprintf "delta: load client exited %d\n" code;
          Json.Obj [ ("error", Json.Int code) ]
        end
        else
          let ic = open_in out_file in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.of_string (String.trim text) with
          | Ok j -> Option.value (Json.member "load" j) ~default:Json.Null
          | Error e ->
            Printf.eprintf "delta: load summary unparseable: %s\n" e;
            Json.Null
      in
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> prerr_endline "delta: server did not drain cleanly");
      (match load with
      | Json.Obj _ ->
        Printf.printf "serve: open-loop client summary %s\n"
          (Json.to_string load)
      | _ -> ());
      Json.Obj
        [
          ("bench", Json.String "qft:5");
          ("connections", Json.Int 4);
          ("open_loop_target_rps", Json.Float target_rps);
          ("load", load);
        ]
    end
  in
  let json =
    Json.Obj
      [
        ("pr", Json.Int 10);
        ("label", Json.String "incremental re-estimation");
        ("smoke", Json.Bool smoke);
        ("edits_per_round", Json.Int edits_per_round);
        ("edit_profile", Json.String "frontier-singles");
        ( "delta",
          Json.Obj
            [
              ("rows", Json.List rows);
              ("incr_total_s", Json.Float !incr_total);
              ("full_total_s", Json.Float !full_total);
              ("speedup", Json.Float speedup);
              ("within_target", Json.Bool speedup_ok);
            ] );
        ( "cnot",
          Json.Obj
            [
              ("edit_profile", Json.String "frontier-singles+2cnot");
              ("rows", Json.List cnot_rows);
              ("incr_total_s", Json.Float !cnot_incr_total);
              ("full_total_s", Json.Float !cnot_full_total);
              ("speedup", Json.Float cnot_speedup);
              ("rebased_rounds", Json.Int !rebased_rounds);
              ("rounds_total", Json.Int !cnot_total_rounds);
              ("within_target", Json.Bool cnot_ok);
            ] );
        ("pr6_perf_gate", pr6_gate);
        ("serve", serve_section);
      ]
  in
  Json.write_file out json;
  Printf.printf "[wrote %s]\n" out;
  if not speedup_ok then begin
    prerr_endline "FAIL: estimate-delta speedup below the 5x target";
    exit 1
  end;
  if not cnot_ok then begin
    prerr_endline
      "FAIL: CNOT-batch speedup below the 4x target (or no round re-based)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* PR 9: auto-calibration (leqa calibrate)                             *)
(* ------------------------------------------------------------------ *)

(* Three sections, each an assertion the calibration subsystem lives or
   dies by: the corpus build must pay for its pool fan-out (QSPR runs
   dominate, so the speedup gate mirrors the perf bench — skipped on a
   single core), two same-seed fits must render byte-identical tables,
   and the fitted tables must shrink the worst-case suite error both
   against the paper defaults and under the 10% acceptance ceiling.
   Writes BENCH_PR9.json. *)
let calib_bench ~scale ~out () =
  let module Harness = Leqa_diff.Harness in
  let module Fit = Leqa_calib.Fit in
  let module Space = Leqa_calib.Space in
  let module Render = Leqa_calib.Render in
  let smoke = scale <= 0.0 in
  let jobs_requested = Pool.default_jobs () in
  let cores = Pool.cores_detected () in
  let par_jobs = max 1 (min jobs_requested cores) in
  header
    (Printf.sprintf
       "Auto-calibration fit   [requested %d, cores %d, effective %d%s]"
       jobs_requested cores par_jobs (if smoke then ", smoke" else ""));
  (* the smoke corpus: three suite families and four random circuits —
     enough cases to land in more than one regime bucket, small enough
     that the QSPR half stays in seconds *)
  let benches =
    if smoke then Some [ "8bitadder"; "gf2^16mult"; "hwb15ps" ] else None
  in
  let random_count = if smoke then 4 else Fit.default_random_count in
  let rounds = if smoke then 2 else Fit.default_rounds in
  let seed = Fit.default_seed in
  let with_pool jobs f =
    let pool = Pool.create ~jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)
  in
  (* 1. corpus build: serial vs pooled, same bytes *)
  let corpus_key (c : Harness.training_case) =
    Printf.sprintf "%s-%dx%d-%Lx" c.Harness.t_case.Leqa_diff.Diff.label
      c.Harness.t_case.Leqa_diff.Diff.width
      c.Harness.t_case.Leqa_diff.Diff.height
      (Int64.bits_of_float c.Harness.t_simulated_us)
  in
  let build jobs =
    with_pool jobs (fun pool ->
        Timing.time (fun () ->
            Harness.training_corpus ?benches ~random_count ~seed ~pool ()))
  in
  let corpus_serial, dt_serial = build 1 in
  let corpus_parallel, dt_parallel = build par_jobs in
  let corpus_identical =
    List.map corpus_key corpus_serial = List.map corpus_key corpus_parallel
  in
  let corpus_speedup = dt_serial /. Float.max 1e-9 dt_parallel in
  Printf.printf
    "corpus build (%d cases): jobs=1 %.3f s   jobs=%d %.3f s   %.2fx   \
     identical: %b\n"
    (List.length corpus_serial) dt_serial par_jobs dt_parallel corpus_speedup
    corpus_identical;
  if not corpus_identical then begin
    prerr_endline "FAIL: training corpus differs between pool widths";
    exit 1
  end;
  let gate_active = par_jobs >= 2 in
  let gate_ok = (not gate_active) || corpus_speedup >= 1.2 in
  let gate_status =
    if not gate_active then "skipped (single core)"
    else if gate_ok then "passed"
    else "failed"
  in
  Printf.printf "corpus speedup gate (>= 1.2x at %d domains): %s\n" par_jobs
    gate_status;
  (* 2. two same-seed fits render byte-identical tables *)
  let run_fit () =
    with_pool par_jobs (fun pool ->
        Timing.time (fun () ->
            Fit.fit ~seed ~random_count ~rounds ?benches ~pool ()))
  in
  let (fit1, _), dt_fit1 = run_fit () in
  let (fit2, _), dt_fit2 = run_fit () in
  let deterministic = Render.data_ml fit1 = Render.data_ml fit2 in
  Printf.printf
    "fit (%d evals): %.3f s, rerun %.3f s   tables byte-identical: %b\n"
    fit1.Fit.f_evals dt_fit1 dt_fit2 deterministic;
  if not deterministic then begin
    prerr_endline "FAIL: same-seed fits rendered different tables";
    exit 1
  end;
  (* 3. the fitted tables shrink the worst case.  The checked-in tables
     (what `--conventions fitted` resolves) are measured against the
     paper defaults on the same corpus; the fit must beat the defaults
     and clear the 10% acceptance ceiling. *)
  let worst point_for =
    with_pool par_jobs (fun pool ->
        List.fold_left
          (fun acc (m : Fit.measured) -> Float.max acc m.Fit.m_err)
          0.0
          (Fit.measure ~pool ~point_for corpus_serial))
  in
  let fitted_worst = worst (Fit.of_tables ()) in
  let default_worst = worst (fun _ -> Space.paper_default) in
  let shrinks = fitted_worst < default_worst in
  let under_ceiling = fitted_worst <= 0.10 in
  Printf.printf
    "worst-case relative error: paper defaults %.2f%%   fitted tables %.2f%%\n\
     fitted < defaults: %b   fitted <= 10%% ceiling: %b\n"
    (100.0 *. default_worst) (100.0 *. fitted_worst) shrinks under_ceiling;
  if not (shrinks && under_ceiling) then begin
    prerr_endline "FAIL: fitted tables do not shrink the worst case";
    exit 1
  end;
  let json =
    Json.Obj
      [
        ("pr", Json.Int 9);
        ("label", Json.String "auto-calibration");
        ("jobs_requested", Json.Int jobs_requested);
        ("cores_detected", Json.Int cores);
        ("jobs_effective", Json.Int par_jobs);
        ("smoke", Json.Bool smoke);
        ("perf_gate", Json.String gate_status);
        ( "corpus",
          Json.Obj
            [
              ("cases", Json.Int (List.length corpus_serial));
              ("serial_s", Json.Float dt_serial);
              ("parallel_s", Json.Float dt_parallel);
              ("speedup", Json.Float corpus_speedup);
              ("identical", Json.Bool corpus_identical);
            ] );
        ( "fit",
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("rounds", Json.Int rounds);
              ("evals", Json.Int fit1.Fit.f_evals);
              ("fit_s", Json.Float dt_fit1);
              ("rerun_s", Json.Float dt_fit2);
              ("deterministic", Json.Bool deterministic);
            ] );
        ( "accuracy",
          Json.Obj
            [
              ("default_worst", Json.Float default_worst);
              ("fitted_worst", Json.Float fitted_worst);
              ("shrinks", Json.Bool shrinks);
              ("under_10pct", Json.Bool under_ceiling);
            ] );
      ]
  in
  Json.write_file out json;
  Printf.printf "[wrote %s]\n" out

let () =
  let args = Array.to_list Sys.argv in
  let scale = ref 0.5 in
  let command = ref "all" in
  let json_path = ref None in
  let perf_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      (* scale 0 is the perf command's smoke mode; every other command
         needs a positive scale *)
      (match float_of_string_opt v with
      | Some s when s >= 0.0 -> scale := s
      | _ -> prerr_endline "invalid --scale"; exit 2);
      parse rest
    | "--full" :: rest ->
      scale := 1.0;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> Pool.set_default_jobs j
      | _ -> prerr_endline "invalid --jobs"; exit 2);
      parse rest
    | "--out" :: path :: rest ->
      perf_out := Some path;
      parse rest
    | cmd :: rest ->
      command := cmd;
      parse rest
  in
  (match args with _ :: rest -> parse rest | [] -> ());
  let scale = !scale in
  if
    scale <= 0.0 && !command <> "perf" && !command <> "serve"
    && !command <> "chaos" && !command <> "delta" && !command <> "calib"
  then begin
    prerr_endline
      "--scale 0 is only valid for the perf, serve, chaos, delta and calib \
       commands";
    exit 2
  end;
  (* each measurement command has its own default artifact *)
  let out = !perf_out in
  let perf_out = Option.value out ~default:"BENCH_PR6.json" in
  let serve_out = Option.value out ~default:"BENCH_PR4.json" in
  let chaos_out = Option.value out ~default:"BENCH_PR7.json" in
  let delta_out = Option.value out ~default:"BENCH_PR10.json" in
  let calib_out = Option.value out ~default:"BENCH_PR9.json" in
  let maybe_dump rows =
    match !json_path with
    | None -> ()
    | Some path ->
      Json.write_file path (rows_to_json rows ~scale);
      Printf.printf "\n[wrote %s]\n" path
  in
  match !command with
  | "table1" -> table1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "table2" ->
    workloads ~scale;
    let rows = run_suite ~scale in
    table2 rows ~scale;
    maybe_dump rows
  | "table3" ->
    let rows = run_suite ~scale in
    table3 rows ~scale;
    maybe_dump rows
  | "scaling" -> scaling ()
  | "ablation-truncation" -> ablation_truncation ~scale
  | "ablation-v" -> ablation_v ~scale
  | "ablation-routing" -> ablation_routing ~scale
  | "ablation-topology" -> ablation_topology ~scale
  | "ablation-mappers" -> ablation_mappers ~scale
  | "ablation-placement" -> ablation_placement ~scale
  | "ablation-deferral" -> ablation_deferral ~scale
  | "complexity" -> complexity ()
  | "table1-designed" -> table1_designed ()
  | "sweep-fabric" -> sweep_fabric ()
  | "tornado" -> tornado ()
  | "workloads" -> workloads ~scale
  | "micro" -> micro ()
  | "perf" -> perf ~scale ~out:perf_out ()
  | "serve" -> serve_bench ~scale ~out:serve_out ()
  | "chaos" -> chaos_bench ~scale ~out:chaos_out ()
  | "delta" -> delta_bench ~scale ~out:delta_out ()
  | "calib" -> calib_bench ~scale ~out:calib_out ()
  | "all" ->
    table1 ();
    fig2 ();
    fig3 ();
    fig4 ();
    fig5 ();
    workloads ~scale;
    let rows = run_suite ~scale in
    table2 rows ~scale;
    table3 rows ~scale;
    maybe_dump rows;
    scaling ();
    ablation_truncation ~scale;
    ablation_v ~scale;
    ablation_routing ~scale;
    ablation_topology ~scale;
    ablation_mappers ~scale;
    ablation_placement ~scale;
    ablation_deferral ~scale;
    complexity ();
    table1_designed ();
    sweep_fabric ();
    tornado ();
    perf ~scale ~out:perf_out ();
    micro ()
  | other ->
    Printf.eprintf
      "unknown command %S\n\
       commands: table1 fig2 fig3 fig4 fig5 table2 table3 scaling\n\
      \          ablation-truncation ablation-v ablation-routing\n\
      \          ablation-topology ablation-mappers ablation-placement\n\
      \          ablation-deferral complexity table1-designed\n\
      \          sweep-fabric tornado workloads perf serve chaos delta micro \
       all\n\
       options: [--scale S | --full] [--json PATH] [--jobs N] [--out PATH]\n\
       (perf --scale 0 = smoke mode; --jobs also honours $LEQA_JOBS)\n"
      other;
    exit 2

module Json = Leqa_util.Json
module Lru = Leqa_util.Lru
module Fingerprint = Leqa_util.Fingerprint
module Params = Leqa_fabric.Params

type prep_entry = {
  ft : Leqa_circuit.Ft_circuit.t;
  qodg : Leqa_qodg.Qodg.t;
  prepared : Leqa_core.Estimator.prepared;
}

type t = {
  results : (string, Json.t) Lru.t;
  preps : (string, prep_entry) Lru.t;
}

(* The result cache sits on the hot request path and is hammered by
   every pool domain during batch fan-out: shard it so concurrent
   lookups contend only on hash collisions.  The prep cache holds few,
   heavy entries and is consulted once per request — one lock is fine
   and keeps its LRU order exact. *)
let result_shards = 8

let create ~result_entries ~prep_entries =
  {
    results =
      Lru.create ~shards:result_shards ~name:"server.result"
        ~capacity:result_entries ();
    preps = Lru.create ~name:"server.prep" ~capacity:prep_entries ();
  }

let circuit_key circuit = Fingerprint.of_string (Source.canonical circuit)

(* every field that feeds the estimate, canonicalized per field: %.17g so
   distinct floats never collide, -0.0 collapsed to 0, NaN/Inf rejected
   with a Usage_error naming the field (never digested into a key) *)
let params_fragment (p : Params.t) =
  let f = Fingerprint.float_repr in
  String.concat ","
    [
      f ~field:"d_h" p.Params.d_h;
      f ~field:"d_t" p.Params.d_t;
      f ~field:"d_s" p.Params.d_s;
      f ~field:"d_pauli" p.Params.d_pauli;
      f ~field:"d_cnot" p.Params.d_cnot;
      string_of_int p.Params.nc;
      f ~field:"v" p.Params.v;
      string_of_int p.Params.width;
      string_of_int p.Params.height;
      f ~field:"t_move" p.Params.t_move;
      f ~field:"lg_mult" p.Params.lg_mult;
      f ~field:"cong_slope" p.Params.cong_slope;
      (match p.Params.topology with
      | Params.Grid -> "grid"
      | Params.Torus -> "torus");
    ]

let result_key ~method_ ~circuit_key ~params ~options =
  Fingerprint.combine
    (method_ :: circuit_key
    :: params_fragment params
    :: List.map (fun (k, v) -> k ^ "=" ^ v) options)

let valid_report json = Json.member "schema_version" json <> None

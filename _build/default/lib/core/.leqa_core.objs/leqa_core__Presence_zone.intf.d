lib/core/presence_zone.mli: Leqa_iig

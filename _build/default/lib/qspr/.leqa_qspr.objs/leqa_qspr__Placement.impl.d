lib/qspr/placement.ml: Array Leqa_fabric Leqa_iig Leqa_util List

test/test_optimize.ml: Alcotest Array Ft_circuit Ft_gate Leqa_benchmarks Leqa_circuit Leqa_util List Optimize Printf String

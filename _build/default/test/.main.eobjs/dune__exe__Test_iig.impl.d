test/test_iig.ml: Alcotest Iig Leqa_benchmarks Leqa_circuit Leqa_iig Leqa_qodg Leqa_util List

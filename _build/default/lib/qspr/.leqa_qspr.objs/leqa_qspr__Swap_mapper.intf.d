lib/qspr/swap_mapper.mli: Leqa_fabric Leqa_qodg Placement

(** Exact shortest Hamiltonian path / TSP tour via Held-Karp dynamic
    programming.  Exponential in the point count, so limited to small
    instances; used only to validate {!Bounds} and {!Heuristic}. *)

val max_points : int
(** Hard limit on instance size (20). *)

val shortest_tour : (float * float) array -> float
(** Length of the optimal closed tour.  0 for fewer than 2 points.
    @raise Invalid_argument beyond [max_points]. *)

val shortest_path : (float * float) array -> float
(** Length of the optimal open Hamiltonian path (any endpoints).
    0 for fewer than 2 points. *)

(** Qubit routing over the TQA channels for the detailed mapper.

    Two route-search modes:
    - [Astar] (default): congestion-aware A* over the ULB grid — each hop
      costs [T_move] plus the expected wait on the channel segment, with a
      Manhattan·[T_move] heuristic.  This is what a detailed mapper does,
      and its per-route search cost is what makes QSPR runtime grow
      superlinearly with operation count (Section 4.2).
    - [Xy]: dimension-ordered routing, O(distance) per route.

    Every hop of the chosen path books a server slot on the corresponding
    channel segment, so congestion emerges from contention on the shared
    {!Leqa_fabric.Channel.t}. *)

type mode = Astar | Xy

type t

val create : ?mode:mode -> Leqa_fabric.Params.t -> t

val mode : t -> mode

val channels : t -> Leqa_fabric.Channel.t

val route :
  t ->
  src:Leqa_fabric.Geometry.coord ->
  dst:Leqa_fabric.Geometry.coord ->
  depart:float ->
  float
(** Move a qubit from [src] to [dst], leaving no earlier than [depart];
    returns the arrival time at [dst] ([depart] itself when [src = dst]).
    Side effect: channel reservations along the chosen path. *)

val estimate :
  t ->
  src:Leqa_fabric.Geometry.coord ->
  dst:Leqa_fabric.Geometry.coord ->
  float
(** Congestion-free travel time: [manhattan · T_move]. *)

val hops_taken : t -> int
(** Total hops booked so far. *)

val total_wait : t -> float
(** Total congestion wait accumulated on all channels. *)

val nodes_explored : t -> int
(** Cumulative A* search effort (0 in [Xy] mode) — the mapper's own
    work metric. *)

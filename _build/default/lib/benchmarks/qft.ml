module Circuit = Leqa_circuit.Circuit
module Gate = Leqa_circuit.Gate

(* controlled-R_k via the T-conjugation pattern:
     Rz(theta/2) on control, CNOT, Rz(-theta/2) on target, CNOT,
     Rz(theta/2) on target
   with the Rz slots filled from the discrete {Z, S, T} family the FT set
   offers (the approximation the fabric executes anyway). *)
let rotation_for k q =
  if k <= 1 then Gate.Single (Gate.Z, q)
  else if k = 2 then Gate.Single (Gate.S, q)
  else Gate.Single (Gate.T, q)

let rotation_inverse_for k q =
  if k <= 1 then Gate.Single (Gate.Z, q)
  else if k = 2 then Gate.Single (Gate.Sdg, q)
  else Gate.Single (Gate.Tdg, q)

let controlled_phase ~k ~control ~target =
  [
    rotation_for k control;
    Gate.Cnot { control; target };
    rotation_inverse_for k target;
    Gate.Cnot { control; target };
    rotation_for k target;
  ]

let controlled_phase_gates ~k ~control ~target ~inverse =
  if inverse then
    List.rev_map
      (fun g ->
        match g with
        | Gate.Single (Gate.T, q) -> Gate.Single (Gate.Tdg, q)
        | Gate.Single (Gate.Tdg, q) -> Gate.Single (Gate.T, q)
        | Gate.Single (Gate.S, q) -> Gate.Single (Gate.Sdg, q)
        | Gate.Single (Gate.Sdg, q) -> Gate.Single (Gate.S, q)
        | other -> other)
      (controlled_phase ~k ~control ~target)
  else controlled_phase ~k ~control ~target

let circuit ?(bandwidth = 8) ~n () =
  if n < 2 then invalid_arg "Qft.circuit: n must be >= 2";
  if bandwidth < 1 then invalid_arg "Qft.circuit: bandwidth must be >= 1";
  let circ = Circuit.create ~num_qubits:n () in
  for i = 0 to n - 1 do
    Circuit.add circ (Gate.Single (Gate.H, i));
    let upper = min (n - 1) (i + bandwidth) in
    for j = i + 1 to upper do
      Circuit.add_all circ
        (controlled_phase ~k:(j - i + 1) ~control:j ~target:i)
    done
  done;
  (* final wire reversal with swap = 3 CNOTs *)
  for i = 0 to (n / 2) - 1 do
    let a = i and b = n - 1 - i in
    Circuit.add_all circ
      Gate.
        [
          Cnot { control = a; target = b };
          Cnot { control = b; target = a };
          Cnot { control = a; target = b };
        ]
  done;
  circ

let gate_count ?(bandwidth = 8) ~n () =
  if n < 2 then invalid_arg "Qft.gate_count: n must be >= 2";
  let phases = ref 0 in
  for i = 0 to n - 1 do
    phases := !phases + (min (n - 1) (i + bandwidth) - i)
  done;
  n (* H *) + (5 * !phases) + (3 * (n / 2))

module Circuit = Leqa_circuit.Circuit
module Gate = Leqa_circuit.Gate

let carry ~c_in ~a ~b ~c_out =
  Gate.
    [
      Toffoli { c1 = a; c2 = b; target = c_out };
      Cnot { control = a; target = b };
      Toffoli { c1 = c_in; c2 = b; target = c_out };
    ]

let carry_inverse ~c_in ~a ~b ~c_out = List.rev (carry ~c_in ~a ~b ~c_out)

let sum ~c_in ~a ~b =
  Gate.[ Cnot { control = a; target = b }; Cnot { control = c_in; target = b } ]

let ripple_carry ~n =
  if n < 1 then invalid_arg "Adder.ripple_carry: n must be >= 1";
  let carry_wire i = i
  and a_wire i = n + i
  and b_wire i = (2 * n) + i in
  let circ = Circuit.create ~num_qubits:((3 * n) + 1) () in
  (* forward carry chain; the top carry-out lands in the overflow bit b_n *)
  for i = 0 to n - 1 do
    let c_out = if i = n - 1 then b_wire n else carry_wire (i + 1) in
    Circuit.add_all circ
      (carry ~c_in:(carry_wire i) ~a:(a_wire i) ~b:(b_wire i) ~c_out)
  done;
  Circuit.add circ
    (Gate.Cnot { control = a_wire (n - 1); target = b_wire (n - 1) });
  Circuit.add_all circ
    (sum ~c_in:(carry_wire (n - 1)) ~a:(a_wire (n - 1)) ~b:(b_wire (n - 1)));
  for i = n - 2 downto 0 do
    Circuit.add_all circ
      (carry_inverse ~c_in:(carry_wire i) ~a:(a_wire i) ~b:(b_wire i)
         ~c_out:(carry_wire (i + 1)));
    Circuit.add_all circ (sum ~c_in:(carry_wire i) ~a:(a_wire i) ~b:(b_wire i))
  done;
  circ

(* Appends [src]'s gates into [dst] with wires shifted by [offset]. *)
let append_shifted dst src ~offset =
  let shift_gate g =
    let s q = q + offset in
    match g with
    | Gate.Single (k, q) -> Gate.Single (k, s q)
    | Gate.Cnot { control; target } ->
      Gate.Cnot { control = s control; target = s target }
    | Gate.Toffoli { c1; c2; target } ->
      Gate.Toffoli { c1 = s c1; c2 = s c2; target = s target }
    | Gate.Fredkin { control; t1; t2 } ->
      Gate.Fredkin { control = s control; t1 = s t1; t2 = s t2 }
    | Gate.Mct { controls; target } ->
      Gate.Mct { controls = List.map s controls; target = s target }
    | Gate.Mcf { controls; t1; t2 } ->
      Gate.Mcf { controls = List.map s controls; t1 = s t1; t2 = s t2 }
  in
  Circuit.iter (fun g -> Circuit.add dst (shift_gate g)) src

let modular ~n =
  if n < 2 then invalid_arg "Adder.modular: n must be >= 2";
  let base = ripple_carry ~n in
  let width = Circuit.num_qubits base in
  (* extra wires: the modulus register N (n wires) and a comparison flag *)
  let flag = width + n in
  let circ = Circuit.create ~num_qubits:(flag + 1) () in
  let n_wire i = width + i in
  let b_wire i = (2 * n) + i in
  (* VBE modular-addition skeleton: ADD(a,b); SUB(N,b); flag ← sign via a
     wide MCT over b; controlled re-ADD(N,b); ADD/SUB(a,b) cleanup pair.
     The three "adder passes over (N,b)" reuse the same ripple structure. *)
  let add_pass () = append_shifted circ base ~offset:0 in
  add_pass ();
  add_pass ();
  (* comparison: flag flips when the high half of b is all ones *)
  let controls = List.init (min n 8) (fun i -> b_wire (n - 1 - i)) in
  (match controls with
  | [ c ] -> Circuit.add circ (Gate.Cnot { control = c; target = flag })
  | [ c1; c2 ] -> Circuit.add circ (Gate.Toffoli { c1; c2; target = flag })
  | _ -> Circuit.add circ (Gate.Mct { controls; target = flag }));
  (* controlled modulus re-addition: flag-controlled Toffolis into b *)
  for i = 0 to n - 1 do
    Circuit.add circ
      (Gate.Toffoli { c1 = flag; c2 = n_wire i; target = b_wire i })
  done;
  add_pass ();
  (* uncompute the flag *)
  (match controls with
  | [ c ] -> Circuit.add circ (Gate.Cnot { control = c; target = flag })
  | [ c1; c2 ] -> Circuit.add circ (Gate.Toffoli { c1; c2; target = flag })
  | _ -> Circuit.add circ (Gate.Mct { controls; target = flag }));
  add_pass ();
  add_pass ();
  circ

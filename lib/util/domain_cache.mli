(** Two-level memo cache for pooled domains.

    The hot hit path is domain-local (L1, [Domain.DLS]): no mutex, no
    shared cache line, so pooled kernels that re-read the same memoized
    entries scale with domains instead of serializing on cache traffic.
    A shared mutex-guarded table (L2) backs the local tables: an L1 miss
    adopts the L2 entry into the local table — a "merge" — before
    falling back to recomputation.

    Counters (under [--trace]): per cache, [<name>.hit] / [<name>.miss]
    (hit = served from either level, so hit + miss = lookups) and
    [<name>.evict] for entries a failed [validate] threw out; globally
    across caches, [cache.domain.hit] (L1 hits), [cache.domain.miss]
    (L1 misses) and [cache.domain.merge] (L1 misses served from L2),
    plus [cache.reset] when a level hits [max_entries] and is reset
    wholesale.

    Entries must be treated as immutable once stored: both levels may
    alias the same value, and {!find} hands callers a [copy]. *)

type ('k, 'v) t

val create :
  name:string ->
  ?max_entries:int ->
  ?validate:('v -> bool) ->
  copy:('v -> 'v) ->
  unit ->
  ('k, 'v) t
(** [name] prefixes the per-cache counters.  [max_entries] (default 128)
    bounds each level by wholesale reset.  [validate] (default: accept)
    runs on every lookup at both levels; a failing entry is evicted from
    both and the lookup proceeds as a miss.  [copy] protects cached
    values from caller mutation in both directions. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** A fresh copy of the cached value, consulting the caller domain's L1
    first, then the shared L2. *)

val store : ('k, 'v) t -> 'k -> 'v -> unit
(** Publish [value] under [key] in L2 and in the caller domain's L1.
    The cache takes ownership of [value]: pass a private copy and never
    mutate it afterwards.  First store wins; concurrent duplicate fills
    are dropped. *)

val clear : ('k, 'v) t -> unit
(** Reset L2 and invalidate every domain's L1 (lazily, via a generation
    counter checked on next access). *)

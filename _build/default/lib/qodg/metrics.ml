module Ft_gate = Leqa_circuit.Ft_gate

type t = {
  operations : int;
  edges : int;
  qubits : int;
  depth : int;
  average_parallelism : float;
  peak_parallelism : int;
  cnot_fraction : float;
  average_fanout : float;
}

let compute qodg =
  let operations = Qodg.num_nodes qodg - 2 in
  let schedule = Schedule.compute qodg ~delay:(fun _ -> 1.0) in
  let depth = int_of_float (Schedule.makespan schedule +. 0.5) in
  (* ASAP level occupancy: level of an op = its unit-delay start time *)
  let levels = Hashtbl.create 64 in
  let cnots = ref 0 in
  let fanout = ref 0 in
  Qodg.iter_ops
    (fun node g ->
      let level = int_of_float (Schedule.asap schedule node +. 0.5) in
      Hashtbl.replace levels level
        (1 + Option.value ~default:0 (Hashtbl.find_opt levels level));
      (match g with Ft_gate.Cnot _ -> incr cnots | Ft_gate.Single _ -> ());
      fanout := !fanout + Dag.out_degree (Qodg.dag qodg) node)
    qodg;
  let peak = Hashtbl.fold (fun _ c acc -> max acc c) levels 0 in
  {
    operations;
    edges = Qodg.num_edges qodg;
    qubits = Qodg.num_qubits qodg;
    depth;
    average_parallelism =
      (if depth = 0 then 0.0
       else float_of_int operations /. float_of_int depth);
    peak_parallelism = peak;
    cnot_fraction =
      (if operations = 0 then 0.0
       else float_of_int !cnots /. float_of_int operations);
    average_fanout =
      (if operations = 0 then 0.0
       else float_of_int !fanout /. float_of_int operations);
  }

let pp ppf m =
  Format.fprintf ppf
    "ops=%d edges=%d qubits=%d depth=%d par(avg)=%.1f par(peak)=%d \
     cnot%%=%.0f fanout=%.2f"
    m.operations m.edges m.qubits m.depth m.average_parallelism
    m.peak_parallelism
    (100.0 *. m.cnot_fraction)
    m.average_fanout

type single_kind = X | Y | Z | H | S | Sdg | T | Tdg

type t =
  | Single of single_kind * int
  | Cnot of { control : int; target : int }
  | Toffoli of { c1 : int; c2 : int; target : int }
  | Fredkin of { control : int; t1 : int; t2 : int }
  | Mct of { controls : int list; target : int }
  | Mcf of { controls : int list; t1 : int; t2 : int }

let qubits = function
  | Single (_, q) -> [ q ]
  | Cnot { control; target } -> [ control; target ]
  | Toffoli { c1; c2; target } -> [ c1; c2; target ]
  | Fredkin { control; t1; t2 } -> [ control; t1; t2 ]
  | Mct { controls; target } -> controls @ [ target ]
  | Mcf { controls; t1; t2 } -> controls @ [ t1; t2 ]

let max_qubit g = List.fold_left max 0 (qubits g)

let rec has_duplicate = function
  | [] -> false
  | q :: rest -> List.mem q rest || has_duplicate rest

let validate g =
  let operands = qubits g in
  if List.exists (fun q -> q < 0) operands then Error "negative qubit index"
  else if has_duplicate operands then Error "duplicate operand wire"
  else
    match g with
    | Mct { controls; _ } when List.length controls < 3 ->
      Error "MCT requires >= 3 controls (use Cnot/Toffoli below that)"
    | Mcf { controls; _ } when List.length controls < 2 ->
      Error "MCF requires >= 2 controls (use Fredkin below that)"
    | Single _ | Cnot _ | Toffoli _ | Fredkin _ | Mct _ | Mcf _ -> Ok ()

let arity g = List.length (qubits g)

let is_two_qubit = function
  | Cnot _ -> true
  | Single _ | Toffoli _ | Fredkin _ | Mct _ | Mcf _ -> false

let single_kind_to_string = function
  | X -> "X"
  | Y -> "Y"
  | Z -> "Z"
  | H -> "H"
  | S -> "S"
  | Sdg -> "S†"
  | T -> "T"
  | Tdg -> "T†"

let wire_list qs = String.concat "," (List.map (fun q -> "q" ^ string_of_int q) qs)

let to_string = function
  | Single (k, q) -> Printf.sprintf "%s q%d" (single_kind_to_string k) q
  | Cnot { control; target } -> Printf.sprintf "CNOT q%d,q%d" control target
  | Toffoli { c1; c2; target } ->
    Printf.sprintf "TOF q%d,q%d,q%d" c1 c2 target
  | Fredkin { control; t1; t2 } ->
    Printf.sprintf "FRE q%d,q%d,q%d" control t1 t2
  | Mct { controls; target } ->
    Printf.sprintf "MCT %s" (wire_list (controls @ [ target ]))
  | Mcf { controls; t1; t2 } ->
    Printf.sprintf "MCF %s" (wire_list (controls @ [ t1; t2 ]))

let pp ppf g = Format.pp_print_string ppf (to_string g)

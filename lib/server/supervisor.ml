module Json = Leqa_util.Json
module E = Leqa_util.Error
module Backoff = Leqa_util.Backoff
module Fingerprint = Leqa_util.Fingerprint
module Telemetry = Leqa_util.Telemetry

type config = {
  workers : int;
  worker_prog : string;
  worker_argv : string array;
  max_attempts : int;
  wedge_timeout_s : float;
  heartbeat_period_s : float;
  backoff_seed : int;
  max_request_bytes : int;
  max_inflight : int;
      (* per-connection cap on admitted-but-unanswered requests: bounds
         the reorder buffer (one stalled worker can no longer make the
         master buffer every later completion without limit); excess
         load is shed with a typed Server_overload response *)
}

let default_max_inflight = 256

let default_config ~worker_prog ~worker_argv ~workers =
  {
    workers;
    worker_prog;
    worker_argv;
    max_attempts = 3;
    wedge_timeout_s = 60.0;
    heartbeat_period_s = 5.0;
    backoff_seed = 0x5eed;
    max_request_bytes = Protocol.default_max_bytes;
    max_inflight = default_max_inflight;
  }

(* ---- jobs ------------------------------------------------------------ *)

(* A job is an opaque verbatim request line plus everything the master
   needs to stand in for the worker when things go wrong: the parsed id
   (for a typed Worker_lost answer), the home shard, and the delivery
   callback.  The line itself is never rewritten — responses stream back
   byte-identical to what a single-process server would have said. *)
type job = {
  line : string;
  id : Json.t;
  version : Protocol.rpc_version;
  shard : int;
  attempts : int;  (* times this line has been handed to a worker *)
  session : session_kind;
  reply : string -> unit;
}

(* Live session state lives in exactly one worker process: [Opens] jobs
   record a handle→worker pin from the response, [Bound] jobs are routed
   by that pin.  When the pinned worker is gone the job is re-homed on a
   sibling chosen by handle hash ([rehomed] marks it so the response can
   re-pin): with a shared [--store] the sibling rebuilds the session
   from its journal and answers as if nothing happened; without one it
   answers the typed [Session_expired] itself — either way the worker
   that owns (or fails to own) the state decides, never the master. *)
and session_kind =
  | Stateless
  | Opens  (* open-circuit: pin the returned handle to the worker *)
  | Bound of { handle : string; closes : bool; mutable rehomed : bool }

(* The per-worker FIFO: the engine answers in request order within a
   connection, so response line [k] out of a worker always belongs to
   pending entry [k] — no id rewriting needed to match them.  Heartbeat
   pings ride the same queue; their pongs are consumed positionally. *)
type pending = Job of job | Heartbeat

type proc = {
  pid : int;
  gen : int;
  slot : int;
  to_worker : out_channel;
  from_worker : in_channel;
  pending : pending Queue.t;
  pending_mutex : Mutex.t;
  write_mutex : Mutex.t;  (* serializes push+write; guards [alive] *)
  mutable alive : bool;
  last_activity : float Atomic.t;
  spawned_at : float;
}

type slot_state = {
  mutable sproc : proc option;
  mutable sgen : int;
  mutable consecutive_failures : int;
  mutable restart_at : float;
  mutable restarting : bool;
}

type t = {
  cfg : config;
  slots : slot_state array;
  slots_mutex : Mutex.t;
  (* guards slot_state fields, orphans, readers, pins *)
  pins : (string, int * int) Hashtbl.t;  (* handle -> (slot, generation) *)
  orphans : job Queue.t;  (* parked while every worker is down *)
  rr : int Atomic.t;
  stopping : bool Atomic.t;
  is_draining : bool Atomic.t;
  drain_flag : bool Atomic.t;  (* the SIGTERM handler writes only this *)
  dispatched : int Atomic.t;
  served : int Atomic.t;
  retried : int Atomic.t;
  lost : int Atomic.t;
  restarts : int Atomic.t;
  wedge_kills : int Atomic.t;
  master_errors : int Atomic.t;
  shed : int Atomic.t;  (* requests refused at the in-flight cap *)
  sessions_rehomed : int Atomic.t;
  mutable readers : unit Domain.t list;
}

let create cfg =
  if cfg.workers < 2 then
    invalid_arg "Supervisor.create: workers must be >= 2";
  if cfg.max_attempts < 1 then
    invalid_arg "Supervisor.create: max_attempts must be >= 1";
  {
    cfg;
    slots =
      Array.init cfg.workers (fun _ ->
          {
            sproc = None;
            sgen = 0;
            consecutive_failures = 0;
            restart_at = 0.0;
            restarting = false;
          });
    slots_mutex = Mutex.create ();
    pins = Hashtbl.create 64;
    orphans = Queue.create ();
    rr = Atomic.make 0;
    stopping = Atomic.make false;
    is_draining = Atomic.make false;
    drain_flag = Atomic.make false;
    dispatched = Atomic.make 0;
    served = Atomic.make 0;
    retried = Atomic.make 0;
    lost = Atomic.make 0;
    restarts = Atomic.make 0;
    wedge_kills = Atomic.make 0;
    master_errors = Atomic.make 0;
    shed = Atomic.make 0;
    sessions_rehomed = Atomic.make 0;
    readers = [];
  }

let locked_slots t f =
  Mutex.lock t.slots_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.slots_mutex) f

(* ---- sharding -------------------------------------------------------- *)

(* Shard on the raw source spec (path / bench name / inline text), not
   the parsed circuit: cheap in the master, and every spelling of the
   same spec lands on the same worker — whose caches it already warmed. *)
let spec_string = function
  | Source.File path -> "file\x00" ^ path
  | Source.Bench { name; scale } ->
    Printf.sprintf "bench\x00%s\x00%s" name
      (Fingerprint.float_repr ~field:"scale" scale)
  | Source.Inline text -> "inline\x00" ^ text

let shard_of t (req : Protocol.request) =
  let of_source source =
    let hex = String.sub (Fingerprint.of_string (spec_string source)) 0 8 in
    int_of_string ("0x" ^ hex) mod t.cfg.workers
  in
  match req.Protocol.body with
  | Protocol.Estimate { source; _ } -> of_source source
  | Protocol.Compare { cmp_source = source; _ } -> of_source source
  | Protocol.Sweep_fabric { sw_source = source; _ } -> of_source source
  | Protocol.Diff { df_source = Some source; _ } -> of_source source
  | Protocol.Open_circuit { oc_source = source } -> of_source source
  | Protocol.Diff { df_source = None; _ }
  | Protocol.Calibrate _ | Protocol.Version | Protocol.Ping | Protocol.Stats
  (* session-bound methods are routed by the pin table, not the shard;
     the shard only names a home for the error report if it all fails *)
  | Protocol.Estimate_delta _ | Protocol.Close_circuit _
  | Protocol.Export_circuit _ ->
    Atomic.fetch_and_add t.rr 1 mod t.cfg.workers

let session_kind_of (req : Protocol.request) =
  match req.Protocol.body with
  | Protocol.Open_circuit _ -> Opens
  | Protocol.Estimate_delta { dl_handle; _ } ->
    Bound { handle = dl_handle; closes = false; rehomed = false }
  | Protocol.Export_circuit { ex_handle } ->
    Bound { handle = ex_handle; closes = false; rehomed = false }
  | Protocol.Close_circuit { cl_handle } ->
    Bound { handle = cl_handle; closes = true; rehomed = false }
  | Protocol.Estimate _ | Protocol.Compare _ | Protocol.Sweep_fabric _
  | Protocol.Diff _ | Protocol.Calibrate _ | Protocol.Version | Protocol.Ping
  | Protocol.Stats ->
    Stateless

(* ---- dispatch -------------------------------------------------------- *)

let worker_lost_line job =
  Json.to_string
    (Protocol.response_error ~version:job.version ~id:job.id
       (E.Worker_lost { shard = job.shard; attempts = job.attempts }))

(* Push-then-write under the write mutex, so the pending order IS the
   stdin order (two dispatchers can't interleave push A, push B, write
   B, write A).  The write happens with only this worker's mutex held
   and may block on a full pipe — that block is the per-worker
   backpressure, and it resolves (with an error) if the worker dies,
   because SIGPIPE is ignored in the master. *)
let try_send proc job =
  Mutex.lock proc.write_mutex;
  if not proc.alive then begin
    Mutex.unlock proc.write_mutex;
    false
  end
  else begin
    Mutex.lock proc.pending_mutex;
    Queue.push (Job job) proc.pending;
    Mutex.unlock proc.pending_mutex;
    (* on a write failure the job stays pending: this worker's reader is
       about to see EOF and will re-home everything still queued *)
    (try
       output_string proc.to_worker job.line;
       output_char proc.to_worker '\n';
       flush proc.to_worker
     with Sys_error _ | Unix.Unix_error _ -> ());
    Mutex.unlock proc.write_mutex;
    true
  end

(* A session-bound job prefers its pinned worker — the one holding the
   live Delta state.  When the pin is gone (the worker died, or the pin
   was dropped) the job is re-homed: the handle hashes to a home slot
   and the first live worker from there gets it.  A re-homed request is
   NOT a blind re-execution risk: the receiving worker either rebuilds
   the session from its journal (shared [--store]; an already-applied
   tail batch answers from the recorded bytes, engine tail-match) or
   answers the typed [Session_expired] itself when no journal exists —
   the double-apply bug the old fail-fast prevented is prevented by the
   journal instead, and crash transparency is gained. *)
let dispatch_bound t job ~handle =
  if job.attempts > t.cfg.max_attempts then begin
    Atomic.incr t.lost;
    Telemetry.ambient_count "supervisor.lost";
    job.reply (worker_lost_line { job with attempts = job.attempts - 1 })
  end
  else begin
    let pinned =
      locked_slots t (fun () ->
          match Hashtbl.find_opt t.pins handle with
          | None -> None
          | Some (slot, gen) -> (
            match t.slots.(slot).sproc with
            | Some proc when proc.gen = gen -> Some proc
            | Some _ | None ->
              Hashtbl.remove t.pins handle;
              None))
    in
    match pinned with
    | Some proc when try_send proc job -> ()
    | Some _ | None ->
      locked_slots t (fun () -> Hashtbl.remove t.pins handle);
      (match job.session with
      | Bound b -> b.rehomed <- true
      | Stateless | Opens -> ());
      Atomic.incr t.sessions_rehomed;
      Telemetry.ambient_count "supervisor.session_rehomed";
      (* deterministic home so every retry of this handle converges on
         the same replacement (its replayed session) *)
      let n = t.cfg.workers in
      let home =
        let hex = String.sub (Fingerprint.of_string handle) 0 8 in
        int_of_string ("0x" ^ hex) mod n
      in
      let rec try_from k =
        if k >= n then false
        else begin
          let proc = locked_slots t (fun () -> t.slots.((home + k) mod n).sproc) in
          match proc with
          | Some proc when try_send proc job -> true
          | Some _ | None -> try_from (k + 1)
        end
      in
      if not (try_from 0) then
        if Atomic.get t.stopping then begin
          Atomic.incr t.lost;
          job.reply (worker_lost_line job)
        end
        else begin
          Telemetry.ambient_count "supervisor.orphaned";
          locked_slots t (fun () -> Queue.push job t.orphans)
        end
  end

let rec dispatch t job =
  match job.session with
  | Bound { handle; _ } -> dispatch_bound t job ~handle
  | Stateless | Opens -> dispatch_stateless t job

and dispatch_stateless t job =
  if job.attempts > t.cfg.max_attempts then begin
    Atomic.incr t.lost;
    Telemetry.ambient_count "supervisor.lost";
    job.reply (worker_lost_line { job with attempts = job.attempts - 1 })
  end
  else begin
    let n = t.cfg.workers in
    let rec try_from k =
      if k >= n then false
      else begin
        (* snapshot the occupant under the lock, send outside it: the
           send can block on backpressure and must not freeze the whole
           slot table while it does *)
        let proc =
          locked_slots t (fun () -> t.slots.((job.shard + k) mod n).sproc)
        in
        match proc with
        | Some proc when try_send proc job -> true
        | Some _ | None -> try_from (k + 1)
      end
    in
    if not (try_from 0) then
      if Atomic.get t.stopping then begin
        (* shutting down with nowhere to send it: fail it honestly
           rather than parking it forever *)
        Atomic.incr t.lost;
        job.reply (worker_lost_line job)
      end
      else begin
        (* every worker is down: park until a restart lands *)
        Telemetry.ambient_count "supervisor.orphaned";
        locked_slots t (fun () -> Queue.push job t.orphans)
      end
  end

let drain_orphans t =
  let jobs =
    locked_slots t (fun () ->
        let jobs = Queue.fold (fun acc j -> j :: acc) [] t.orphans in
        Queue.clear t.orphans;
        List.rev jobs)
  in
  List.iter (dispatch t) jobs

(* ---- worker lifecycle ------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* Pin bookkeeping, run on the response before it is released to the
   connection: an open-circuit success pins its handle to this worker
   (so a pipelined follow-up, gated by the connection's stateful
   barrier, finds the pin); a close drops it. *)
let note_session_response t proc job line =
  match job.session with
  | Stateless | Bound { closes = false; rehomed = false; _ } -> ()
  | Bound { handle; closes = true; _ } ->
    locked_slots t (fun () -> Hashtbl.remove t.pins handle)
  | Bound { handle; closes = false; rehomed = true } -> (
    (* a re-homed request its new worker answered ok means the worker
       adopted the session (journal replay): pin it so later requests
       go straight there instead of re-homing every time *)
    match Json.of_string line with
    | Error _ -> ()
    | Ok resp -> (
      match Json.member "ok" resp with
      | Some (Json.Bool true) ->
        locked_slots t (fun () ->
            Hashtbl.replace t.pins handle (proc.slot, proc.gen))
      | _ -> ()))
  | Opens -> (
    match Json.of_string line with
    | Error _ -> ()
    | Ok resp -> (
      match (Json.member "ok" resp, Json.member "handle" resp) with
      | Some (Json.Bool true), Some (Json.String handle) ->
        locked_slots t (fun () ->
            Hashtbl.replace t.pins handle (proc.slot, proc.gen))
      | _ -> ()))

let rec reader_loop t proc =
  match input_line proc.from_worker with
  | line ->
    Atomic.set proc.last_activity (now ());
    let entry =
      Mutex.lock proc.pending_mutex;
      let e =
        if Queue.is_empty proc.pending then None
        else Some (Queue.pop proc.pending)
      in
      Mutex.unlock proc.pending_mutex;
      e
    in
    (match entry with
    | Some (Job job) ->
      Atomic.incr t.served;
      note_session_response t proc job line;
      job.reply line
    | Some Heartbeat -> ()
    | None ->
      (* a response with nothing pending is a protocol violation; note
         it and keep going — dropping it beats crashing the master *)
      Printf.eprintf
        "leqa serve: worker %d (slot %d): unexpected response line dropped\n%!"
        proc.pid proc.slot);
    reader_loop t proc
  | exception (End_of_file | Sys_error _) -> worker_died t proc

and worker_died t proc =
  (* close the dispatch window first: once [alive] is false no new job
     can land in this pending queue, so the drain below is complete *)
  Mutex.lock proc.write_mutex;
  proc.alive <- false;
  Mutex.unlock proc.write_mutex;
  close_out_noerr proc.to_worker;
  close_in_noerr proc.from_worker;
  let status =
    try snd (Unix.waitpid [] proc.pid)
    with Unix.Unix_error _ -> Unix.WEXITED 0
  in
  Mutex.lock proc.pending_mutex;
  let stranded = Queue.fold (fun acc e -> e :: acc) [] proc.pending in
  Queue.clear proc.pending;
  Mutex.unlock proc.pending_mutex;
  let jobs =
    List.rev stranded
    |> List.filter_map (function Job j -> Some j | Heartbeat -> None)
  in
  let stopping = Atomic.get t.stopping in
  locked_slots t (fun () ->
      (* its pins die with it: the next request on such a handle takes
         the re-home path in [dispatch_bound] (journal replay on the
         replacement, or a typed Session_expired from it) *)
      let dead =
        Hashtbl.fold
          (fun h (slot, gen) acc ->
            if slot = proc.slot && gen = proc.gen then h :: acc else acc)
          t.pins []
      in
      List.iter (Hashtbl.remove t.pins) dead;
      let s = t.slots.(proc.slot) in
      if s.sgen = proc.gen then begin
        s.sproc <- None;
        if not stopping then begin
          (* a worker that ran for a while earns a fresh backoff; only
             a hot crash loop escalates the delay *)
          s.consecutive_failures <-
            (if now () -. proc.spawned_at > 10.0 then 1
             else s.consecutive_failures + 1);
          s.restart_at <-
            now ()
            +. Backoff.delay_s
                 ~seed:(t.cfg.backoff_seed + proc.slot)
                 ~attempt:s.consecutive_failures ()
        end
      end);
  if not stopping then begin
    Telemetry.ambient_count "supervisor.worker_died";
    (* OCaml signal numbers are its own negative encoding, not the OS's *)
    let signal_name sg =
      if sg = Sys.sigkill then "SIGKILL"
      else if sg = Sys.sigsegv then "SIGSEGV"
      else if sg = Sys.sigterm then "SIGTERM"
      else if sg = Sys.sigint then "SIGINT"
      else if sg = Sys.sigabrt then "SIGABRT"
      else if sg = Sys.sigbus then "SIGBUS"
      else if sg = Sys.sigpipe then "SIGPIPE"
      else Printf.sprintf "signal %d" sg
    in
    (match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED code ->
      Printf.eprintf
        "leqa serve: worker %d (slot %d) exited with code %d; restarting\n%!"
        proc.pid proc.slot code
    | Unix.WSIGNALED sg | Unix.WSTOPPED sg ->
      Printf.eprintf
        "leqa serve: worker %d (slot %d) killed by %s; restarting\n%!"
        proc.pid proc.slot (signal_name sg))
  end;
  (* re-home everything in flight on a sibling, FIFO order preserved;
     the client never learns its worker died unless the retry cap hits.
     Session-bound requests go back through [dispatch_bound], whose pin
     is now gone, so they take the re-home path: with a journal the
     replacement replays the session — and a batch the dead worker had
     already journaled answers from the recorded bytes (tail-match),
     so re-dispatch cannot double-apply it — without one the sibling
     answers the typed Session_expired.  An in-flight open is stateless
     from the client's view (no handle issued yet), so it retries. *)
  List.iter
    (fun j ->
      Atomic.incr t.retried;
      Telemetry.ambient_count "supervisor.retried";
      dispatch t { j with attempts = j.attempts + 1 })
    jobs

let spawn_worker t slot =
  (* pipe pairs: master->worker stdin, worker stdout->master *)
  let in_read, in_write = Unix.pipe () in
  let out_read, out_write = Unix.pipe () in
  (* the master ends must not leak into sibling workers: a sibling
     holding a dead worker's stdin write-end would defeat EOF *)
  Unix.set_close_on_exec in_write;
  Unix.set_close_on_exec out_read;
  let pid =
    try
      Unix.create_process t.cfg.worker_prog t.cfg.worker_argv in_read
        out_write Unix.stderr
    with e ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ in_read; in_write; out_read; out_write ];
      raise e
  in
  Unix.close in_read;
  Unix.close out_write;
  let gen = locked_slots t (fun () ->
      let s = t.slots.(slot) in
      s.sgen <- s.sgen + 1;
      s.sgen)
  in
  let proc =
    {
      pid;
      gen;
      slot;
      to_worker = Unix.out_channel_of_descr in_write;
      from_worker = Unix.in_channel_of_descr out_read;
      pending = Queue.create ();
      pending_mutex = Mutex.create ();
      write_mutex = Mutex.create ();
      alive = true;
      last_activity = Atomic.make (now ());
      spawned_at = now ();
    }
  in
  let reader = Domain.spawn (fun () -> reader_loop t proc) in
  locked_slots t (fun () ->
      let s = t.slots.(slot) in
      s.sproc <- Some proc;
      s.restarting <- false;
      t.readers <- reader :: t.readers);
  proc

(* The restarter: one domain polling for slots whose backoff has
   elapsed.  Spawning in one place (not in each worker's reader) keeps
   slot bookkeeping single-writer and survives spawn failures with
   another backoff round instead of losing the slot forever. *)
let restarter_loop t =
  while not (Atomic.get t.stopping) do
    let due =
      locked_slots t (fun () ->
          let due = ref [] in
          Array.iteri
            (fun i s ->
              if
                s.sproc = None && (not s.restarting)
                && s.restart_at <= now ()
              then begin
                s.restarting <- true;
                due := i :: !due
              end)
            t.slots;
          !due)
    in
    List.iter
      (fun slot ->
        match spawn_worker t slot with
        | (_ : proc) ->
          Atomic.incr t.restarts;
          Telemetry.ambient_count "supervisor.restarts";
          drain_orphans t
        | exception e ->
          Printf.eprintf
            "leqa serve: cannot respawn worker for slot %d: %s\n%!" slot
            (Printexc.to_string e);
          locked_slots t (fun () ->
              let s = t.slots.(slot) in
              s.restarting <- false;
              s.consecutive_failures <- s.consecutive_failures + 1;
              s.restart_at <-
                now ()
                +. Backoff.delay_s
                     ~seed:(t.cfg.backoff_seed + slot)
                     ~attempt:s.consecutive_failures ()))
      due;
    Unix.sleepf 0.05
  done

(* The heartbeat ticker: pings idle workers (the pong refreshes
   [last_activity] through the ordinary FIFO) and SIGKILLs any worker
   that has had work pending with no output for [wedge_timeout_s] —
   wedged and crashed then look identical to the rest of the machinery:
   EOF on stdout, redispatch, restart.  Pings are only sent to an idle
   worker (empty pending ⇒ empty pipe ⇒ the write cannot block), so
   this domain can never hang on a wedged worker's full pipe. *)
let heartbeat_loop t =
  let ping_line =
    Json.to_string
      (Protocol.request_to_json
         { Protocol.id = Json.Null; version = Protocol.V1;
           body = Protocol.Ping })
  in
  let elapsed = ref 0.0 in
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.1;
    elapsed := !elapsed +. 0.1;
    if !elapsed >= t.cfg.heartbeat_period_s then begin
      elapsed := 0.0;
      Array.iter
        (fun s ->
          match locked_slots t (fun () -> s.sproc) with
          | None -> ()
          | Some proc ->
            let idle = now () -. Atomic.get proc.last_activity in
            let pending_n =
              Mutex.lock proc.pending_mutex;
              let n = Queue.length proc.pending in
              Mutex.unlock proc.pending_mutex;
              n
            in
            if pending_n > 0 && idle > t.cfg.wedge_timeout_s then begin
              Atomic.incr t.wedge_kills;
              Telemetry.ambient_count "supervisor.wedge_kills";
              Printf.eprintf
                "leqa serve: worker %d (slot %d) wedged (%d pending, \
                 %.0fs silent); killing\n\
                 %!"
                proc.pid proc.slot pending_n idle;
              try Unix.kill proc.pid Sys.sigkill
              with Unix.Unix_error _ -> ()
            end
            else if pending_n = 0 then begin
              Mutex.lock proc.write_mutex;
              if proc.alive then begin
                Mutex.lock proc.pending_mutex;
                Queue.push Heartbeat proc.pending;
                Mutex.unlock proc.pending_mutex;
                try
                  output_string proc.to_worker ping_line;
                  output_char proc.to_worker '\n';
                  flush proc.to_worker
                with Sys_error _ | Unix.Unix_error _ -> ()
              end;
              Mutex.unlock proc.write_mutex
            end)
        t.slots
    end
  done

(* ---- stats ----------------------------------------------------------- *)

let stats_json t =
  let slots, pids, orphans, pins =
    locked_slots t (fun () ->
        ( Array.to_list
            (Array.mapi
               (fun i s ->
                 Json.Obj
                   ([
                      ("slot", Json.Int i);
                      ("generation", Json.Int s.sgen);
                      ("alive", Json.Bool (s.sproc <> None));
                    ]
                   @
                   match s.sproc with
                   | None -> []
                   | Some p ->
                     let pending =
                       Mutex.lock p.pending_mutex;
                       let n = Queue.length p.pending in
                       Mutex.unlock p.pending_mutex;
                       n
                     in
                     [ ("pid", Json.Int p.pid); ("pending", Json.Int pending) ]))
               t.slots),
          Array.to_list t.slots
          |> List.filter_map (fun s ->
                 Option.map (fun p -> Json.Int p.pid) s.sproc),
          Queue.length t.orphans,
          Hashtbl.length t.pins ))
  in
  Json.Obj
    [
      ("supervised", Json.Bool true);
      ("workers", Json.Int t.cfg.workers);
      ("dispatched", Json.Int (Atomic.get t.dispatched));
      ("served", Json.Int (Atomic.get t.served));
      ("retried", Json.Int (Atomic.get t.retried));
      ("lost", Json.Int (Atomic.get t.lost));
      ("restarts", Json.Int (Atomic.get t.restarts));
      ("wedge_kills", Json.Int (Atomic.get t.wedge_kills));
      ("master_errors", Json.Int (Atomic.get t.master_errors));
      ("shed", Json.Int (Atomic.get t.shed));
      ("sessions_rehomed", Json.Int (Atomic.get t.sessions_rehomed));
      ("pinned_sessions", Json.Int pins);
      ("max_inflight", Json.Int t.cfg.max_inflight);
      ("orphans", Json.Int orphans);
      ("draining", Json.Bool (Atomic.get t.is_draining));
      ("worker_pids", Json.List pids);
      ("slots", Json.List slots);
    ]

(* ---- connections ----------------------------------------------------- *)

(* Workers answer whenever their shard finishes, but the protocol
   promises responses in request order within a connection — so the
   master assigns each admitted line a sequence number and a reorder
   buffer releases completions strictly in sequence. *)
type conn_state = {
  oc : out_channel;
  conn_mutex : Mutex.t;
  all_flushed : Condition.t;
  mutable next_seq : int;  (* next sequence number to write *)
  mutable issued : int;  (* sequence numbers handed out *)
  buffered : (int, string) Hashtbl.t;
}

let conn_reply conn seq line =
  Mutex.lock conn.conn_mutex;
  Hashtbl.replace conn.buffered seq line;
  let wrote = ref false in
  while Hashtbl.mem conn.buffered conn.next_seq do
    let l = Hashtbl.find conn.buffered conn.next_seq in
    Hashtbl.remove conn.buffered conn.next_seq;
    (* a client that hung up mid-stream must not wedge the sequence:
       drop the bytes but keep advancing *)
    (try
       output_string conn.oc l;
       output_char conn.oc '\n';
       wrote := true
     with Sys_error _ -> ());
    conn.next_seq <- conn.next_seq + 1
  done;
  if !wrote then (try flush conn.oc with Sys_error _ -> ());
  Condition.broadcast conn.all_flushed;
  Mutex.unlock conn.conn_mutex

let serve_connection t ic oc =
  let conn =
    {
      oc;
      conn_mutex = Mutex.create ();
      all_flushed = Condition.create ();
      next_seq = 0;
      issued = 0;
      buffered = Hashtbl.create 64;
    }
  in
  (* admission has two outcomes: a sequence number, or an immediate
     typed shed once [max_inflight] requests are admitted and
     unanswered — that cap is exactly the reorder buffer's bound, so a
     stalled worker can no longer make the master buffer every later
     completion without limit *)
  let admit () =
    Mutex.lock conn.conn_mutex;
    let inflight = conn.issued - conn.next_seq in
    let verdict =
      if inflight >= t.cfg.max_inflight then `Shed inflight
      else begin
        let seq = conn.issued in
        conn.issued <- conn.issued + 1;
        `Seq seq
      end
    in
    Mutex.unlock conn.conn_mutex;
    verdict
  in
  (* session methods mutate worker state in request order (and a bound
     request needs its open's pin recorded first), so they barrier:
     wait until every earlier request on this connection is answered *)
  let barrier_until seq =
    Mutex.lock conn.conn_mutex;
    while conn.next_seq < seq do
      Condition.wait conn.all_flushed conn.conn_mutex
    done;
    Mutex.unlock conn.conn_mutex
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         match admit () with
         | `Shed inflight ->
           (* replied out-of-band: it was never admitted to the
              sequence, and the client asked for more than the server
              agreed to buffer *)
           Atomic.incr t.shed;
           Telemetry.ambient_count "supervisor.shed";
           let id, version =
             match
               Protocol.request_of_line ~max_bytes:t.cfg.max_request_bytes
                 line
             with
             | Ok req -> (req.Protocol.id, req.Protocol.version)
             | Error (id, version, _) -> (id, version)
           in
           Mutex.lock conn.conn_mutex;
           (try
              output_string conn.oc
                (Json.to_string
                   (Protocol.response_error ~version ~id
                      (E.Server_overload
                         { queued = inflight; capacity = t.cfg.max_inflight })));
              output_char conn.oc '\n';
              flush conn.oc
            with Sys_error _ -> ());
           Mutex.unlock conn.conn_mutex
         | `Seq seq -> (
           let reply l = conn_reply conn seq l in
           (* the master answers malformed lines itself, so only valid
              requests — which the engine answers in order — ever reach
              a worker's FIFO *)
           match
             Protocol.request_of_line ~max_bytes:t.cfg.max_request_bytes line
           with
           | Error (id, version, e) ->
             Atomic.incr t.master_errors;
             reply (Json.to_string (Protocol.response_error ~version ~id e))
           | Ok req ->
             if Atomic.get t.is_draining then
               reply
                 (Json.to_string
                    (Protocol.response_error ~version:req.Protocol.version
                       ~id:req.Protocol.id E.Server_draining))
             else begin
               match req.Protocol.body with
               | Protocol.Stats ->
                 (* answered here: the interesting counters (restarts,
                    retries, worker pids) live in the master *)
                 reply
                   (Json.to_string
                      (Protocol.response_ok ~version:req.Protocol.version
                         ~id:req.Protocol.id
                         [ ("stats", stats_json t) ]))
               | _ ->
                 let session = session_kind_of req in
                 if session <> Stateless then barrier_until seq;
                 Atomic.incr t.dispatched;
                 dispatch t
                   {
                     line;
                     id = req.Protocol.id;
                     version = req.Protocol.version;
                     shard = shard_of t req;
                     attempts = 1;
                     session;
                     reply;
                   }
             end)
       end
     done
   with End_of_file | Sys_error _ -> ());
  (* every admitted request must be answered before the connection is
     torn down, or the in-order contract breaks for the tail *)
  Mutex.lock conn.conn_mutex;
  while conn.next_seq < conn.issued do
    Condition.wait conn.all_flushed conn.conn_mutex
  done;
  Mutex.unlock conn.conn_mutex

(* ---- lifecycle ------------------------------------------------------- *)

let install_signal_handlers t =
  match Sys.os_type with
  | "Unix" | "Cygwin" ->
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set t.drain_flag true));
    (* a worker dying mid-write, or a client hanging up, must surface
       as an error return — not kill the master *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

let start t =
  install_signal_handlers t;
  for slot = 0 to t.cfg.workers - 1 do
    ignore (spawn_worker t slot)
  done;
  let restarter = Domain.spawn (fun () -> restarter_loop t) in
  let heartbeat = Domain.spawn (fun () -> heartbeat_loop t) in
  (restarter, heartbeat)

let pending_total t =
  locked_slots t (fun () ->
      Array.fold_left
        (fun acc s ->
          match s.sproc with
          | None -> acc
          | Some p ->
            Mutex.lock p.pending_mutex;
            let n = Queue.length p.pending in
            Mutex.unlock p.pending_mutex;
            acc + n)
        (Queue.length t.orphans) t.slots)

let shutdown t (restarter, heartbeat) =
  Atomic.set t.is_draining true;
  (* let in-flight work finish before the workers are told to go *)
  let deadline = now () +. 30.0 in
  while pending_total t > 0 && now () < deadline do
    Unix.sleepf 0.05
  done;
  Atomic.set t.stopping true;
  (* EOF on stdin is the worker's graceful-drain signal (the same one a
     stdio client sends); readers observe the exit and reap *)
  locked_slots t (fun () ->
      Array.iter
        (fun s ->
          match s.sproc with
          | Some p -> close_out_noerr p.to_worker
          | None -> ())
        t.slots);
  Domain.join restarter;
  Domain.join heartbeat;
  let readers = locked_slots t (fun () -> t.readers) in
  List.iter Domain.join readers

let serve_endpoint t endpoint =
  let domains = start t in
  let sock = Server.listen_endpoint endpoint in
  Fun.protect ~finally:(fun () -> Server.close_endpoint sock endpoint)
  @@ fun () ->
  Fun.protect ~finally:(fun () -> shutdown t domains) @@ fun () ->
  Server.accept_loop
    ~stop:(fun () -> Atomic.get t.drain_flag)
    sock
    (fun fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try serve_connection t ic oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())

let serve_stdio t =
  let domains = start t in
  Fun.protect ~finally:(fun () -> shutdown t domains) @@ fun () ->
  serve_connection t stdin stdout

(** Graphviz (DOT) export of the QODG and related graphs, for rendering
    figures like the paper's Figure 2(b). *)

val qodg_to_dot : ?highlight:int list -> Qodg.t -> string
(** DOT digraph: start/finish as boxes, operations as labelled ellipses;
    [highlight] nodes (e.g. the critical path) are drawn bold. *)

val write_qodg : ?highlight:int list -> string -> Qodg.t -> unit
(** Write the DOT text to a file. *)

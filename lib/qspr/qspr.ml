type config = {
  params : Leqa_fabric.Params.t;
  placement : Placement.strategy;
  routing : Router.mode;
}

let default_config =
  {
    params = Leqa_fabric.Params.default;
    placement = Placement.Spread;
    routing = Router.Astar;
  }

type result = {
  latency_us : float;
  latency_s : float;
  stats : Scheduler.stats;
}

let run ?(config = default_config) ?deadline ?trace qodg =
  let stats =
    Scheduler.run ~routing:config.routing ?deadline ?trace
      ~params:config.params ~placement:config.placement qodg
  in
  {
    latency_us = stats.Scheduler.latency;
    latency_s = stats.Scheduler.latency /. 1e6;
    stats;
  }

let run_circuit ?config ?deadline ?trace circ =
  run ?config ?deadline ?trace (Leqa_qodg.Qodg.of_ft_circuit circ)

type validated = {
  breakdown : Leqa_core.Estimator.breakdown;
  simulated : result option;
}

let run_validated ?(config = default_config) ?estimator_config ?deadline
    ?(telemetry = Leqa_util.Telemetry.noop) qodg =
  (* The analytic estimate is cheap and must survive even a tiny budget,
     so it runs without the deadline; only the detailed simulation is
     cancellable.  On expiry we degrade: the caller still gets a latency
     number, flagged as analytic-only. *)
  let breakdown =
    Leqa_core.Estimator.estimate ?config:estimator_config ~telemetry
      ~params:config.params qodg
  in
  match
    Leqa_util.Telemetry.span telemetry "qspr.simulate" (fun () ->
        run ~config ?deadline qodg)
  with
  | simulated -> { breakdown; simulated = Some simulated }
  | exception Leqa_util.Error.Error (Leqa_util.Error.Timed_out _) ->
    Leqa_util.Telemetry.ambient_count "qspr.degraded";
    { breakdown = { breakdown with degraded = true }; simulated = None }

(** Greedy delta-debugging of a failing diff case to a minimal
    reproducer (DESIGN.md §10).

    Three deterministic passes run to a fixpoint (or the evaluation
    cap): window-wise {e gate dropping} (ddmin-style, halving window
    sizes), {e qubit merging} (rewrite wire [b] as wire [a], dropping
    gates whose operands collapse, then renumbering wires compactly),
    and {e fabric shrinking} (halving the grid).  A candidate replaces
    the current best only if {!Diff.run_case} fails it with the {e same}
    classification key — the reproducer provably reproduces the original
    bug, not a different one.

    No randomness anywhere, so a given (case, outcome) always shrinks to
    the same reproducer — the property the corpus tests rely on.
    Candidates are scored across the domain pool in fixed batches of 8,
    accepting the first identically-failing candidate by batch index, so
    the walk is also identical at every pool width. *)

type stats = {
  evaluations : int;  (** candidate cases actually run *)
  gates_before : int;
  gates_after : int;
}

val shrink :
  ?deadline_s:float ->
  ?conventions:Leqa_core.Calib_tables.conventions ->
  ?max_evals:int ->
  ?pool:Leqa_util.Pool.t ->
  Diff.case ->
  Diff.outcome ->
  Diff.case * Diff.outcome * stats
(** [shrink case outcome] with [Diff.failed outcome.classification].
    [max_evals] (default 400) bounds total candidate evaluations; the
    best case found so far is returned when it runs out.  [pool]
    (default {!Leqa_util.Pool.get_default}) scores candidate batches.
    [conventions] must match whatever scored [outcome] — candidates are
    re-run through {!Diff.run_case} with it, and a mismatch would chase
    a different failure than the one being minimized.
    @raise Invalid_argument if the outcome is not a failure. *)

test/test_tsp.ml: Alcotest Array Bounds Exact Heuristic Leqa_tsp Leqa_util List Printf

module Json = Leqa_util.Json
module E = Leqa_util.Error
module Pool = Leqa_util.Pool
module Telemetry = Leqa_util.Telemetry

type t = { engine : Engine.t }

let create engine = { engine }

(* ---- one connection ------------------------------------------------- *)

type conn_state = {
  oc : out_channel;
  out_mutex : Mutex.t;  (* reader (rejections) and dispatcher both write *)
  eof : bool Atomic.t;
}

let write_line conn json =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      output_string conn.oc (Json.to_string json);
      output_char conn.oc '\n';
      flush conn.oc)

(* The reader: parse lines, admit them.  Admission on a full queue
   blocks right here — the reader stops consuming input and the
   client's pipe fills up.  That is the backpressure. *)
let reader_loop t conn ic =
  (try
     while not (Atomic.get conn.eof) do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let cfg = Engine.config t.engine in
         match
           Protocol.request_of_line ~max_bytes:cfg.Engine.max_request_bytes
             line
         with
         | Error (id, version, e) ->
           write_line conn (Protocol.response_error ~version ~id e)
         | Ok req -> (
           match Engine.admit t.engine req with
           | `Queued -> ()
           | `Rejected resp -> write_line conn resp)
       end
     done
   with End_of_file | Sys_error _ -> ());
  Atomic.set conn.eof true;
  Engine.wake t.engine

let serve_channels t ic oc =
  let conn = { oc; out_mutex = Mutex.create (); eof = Atomic.make false } in
  let reader = Domain.spawn (fun () -> reader_loop t conn ic) in
  let pool = Pool.get_default () in
  let rec dispatch () =
    match Engine.next_batch t.engine ~stop:(fun () -> Atomic.get conn.eof) with
    | [] -> ()  (* queue empty and (EOF or draining): we're done *)
    | [ req ] ->
      (* single request: stay on this thread so request spans nest
         correctly (spans are single-flow-of-control) *)
      write_line conn (Engine.handle t.engine req);
      dispatch ()
    | batch ->
      Telemetry.ambient_count_n "server.batched" (List.length batch);
      (* fan the batch out; nested pool use inside handle (sweeps) is
         safe because the caller helps while waiting.  Session methods
         mutate engine state and their order matters (two edit scripts
         on one handle do not commute), so they act as barriers: each
         maximal stateless run is fanned, each stateful request runs
         inline, and responses still stream in request order. *)
      let flush_run run =
        match List.rev run with
        | [] -> ()
        | [ req ] -> write_line conn (Engine.handle t.engine req)
        | run ->
          List.iter (write_line conn)
            (Pool.map_list pool ~f:(fun req -> Engine.handle t.engine req) run)
      in
      let pending_run =
        List.fold_left
          (fun run req ->
            if Protocol.stateful req.Protocol.body then begin
              flush_run run;
              write_line conn (Engine.handle t.engine req);
              []
            end
            else req :: run)
          [] batch
      in
      flush_run pending_run;
      dispatch ()
  in
  dispatch ();
  (* under a drain the dispatch loop ends as soon as the queue is dry,
     but the reader keeps answering Server_draining until the client
     closes its end — join so those rejections are flushed before the
     connection is torn down *)
  Domain.join reader

(* ---- drain plumbing ------------------------------------------------- *)

(* SIGTERM handlers may run at any point, including while another
   domain holds the engine mutex, so the handler itself only flips an
   atomic; this ticker promotes the flag into the mutex-guarded
   draining state from a normal flow of control. *)
let start_drain_ticker t =
  Domain.spawn (fun () ->
      let rec tick () =
        if Engine.draining t.engine then ()
        else begin
          if Engine.drain_requested t.engine then Engine.set_draining t.engine
          else Unix.sleepf 0.05;
          tick ()
        end
      in
      tick ())

let install_signal_handlers t =
  (match Sys.os_type with
  | "Unix" | "Cygwin" ->
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Engine.request_drain t.engine));
    (* a client that goes away mid-response must not kill the server *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  start_drain_ticker t

let serve_stdio t =
  let ticker = install_signal_handlers t in
  serve_channels t stdin stdout;
  Engine.set_draining t.engine;  (* stop the ticker *)
  Domain.join ticker

(* ---- endpoints ------------------------------------------------------ *)

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let endpoint_to_string = function
  | Unix_path path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let inet_addr_of_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host ""
        [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
    | _ | (exception Not_found) ->
      E.raise_error (E.Usage_error (host ^ ": cannot resolve host")))

let sockaddr_of_endpoint = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (inet_addr_of_host host, port)

(* A socket file left behind by a crashed (or SIGKILLed) server must not
   block the next start, but blindly unlinking would yank the rug from
   under a live one.  So probe first: a connection that completes means
   someone is accepting — refuse to start; ECONNREFUSED means the
   listener is gone — the file is stale, remove it. *)
let remove_if_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (err, _, _) -> `Error (Unix.error_message err)
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    match verdict with
    | `Live ->
      E.raise_error
        (E.Usage_error
           (path
          ^ ": a server is already listening on this socket (stop it, or \
             pick another --socket path)"))
    | `Stale ->
      Telemetry.ambient_count "server.stale_socket_removed";
      Unix.unlink path
    | `Gone -> ()
    | `Error msg -> E.raise_error (E.Io_error (path ^ ": " ^ msg))
  end
  | _ -> E.raise_error (E.Io_error (path ^ ": exists and is not a socket"))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let listen_endpoint endpoint =
  (match endpoint with
  | Unix_path path -> remove_if_stale_socket path
  | Tcp _ -> ());
  let addr = sockaddr_of_endpoint endpoint in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
     | Unix_path _ -> ());
     Unix.bind sock addr;
     Unix.listen sock 16
   with Unix.Unix_error (err, fn, _) ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     E.raise_error
       (E.Io_error
          (Printf.sprintf "%s: %s (%s)"
             (endpoint_to_string endpoint)
             (Unix.error_message err) fn)));
  sock

let close_endpoint sock endpoint =
  (try Unix.close sock with Unix.Unix_error _ -> ());
  match endpoint with
  | Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let accept_loop ~stop sock handler =
  let rec loop () =
    if stop () then ()
    else begin
      (* wake from accept() periodically to notice a requested drain *)
      match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        let fd, _ = Unix.accept sock in
        handler fd;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

let serve_endpoint t endpoint =
  let ticker = install_signal_handlers t in
  let sock = listen_endpoint endpoint in
  Fun.protect ~finally:(fun () -> close_endpoint sock endpoint) @@ fun () ->
  (* one connection at a time: the estimation fan-out already saturates
     the pool, interleaving connections would only mix their queues *)
  accept_loop
    ~stop:(fun () -> Engine.draining t.engine)
    sock
    (fun fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try serve_channels t ic oc with Sys_error _ | Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ());
  Engine.set_draining t.engine;
  Domain.join ticker

let serve_socket t path = serve_endpoint t (Unix_path path)

(* ---- client --------------------------------------------------------- *)

module Client = struct
  type conn = { fd : Unix.file_descr; ic : in_channel; coc : out_channel }

  exception Unreachable of string
  (** Connection-level failure (refused, reset, absent socket) — the
      retriable class; [leqa client] re-dials under {!Leqa_util.Backoff}
      instead of aborting. *)

  let connect endpoint =
    let addr = sockaddr_of_endpoint endpoint in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with Unix.Unix_error (err, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       let msg =
         Printf.sprintf "%s: %s (is the server running?)"
           (endpoint_to_string endpoint)
           (Unix.error_message err)
       in
       (match err with
       | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ETIMEDOUT
         ->
         raise (Unreachable msg)
       | _ -> E.raise_error (E.Io_error msg)));
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      coc = Unix.out_channel_of_descr fd;
    }

  let call conn request =
    (try
       output_string conn.coc (Json.to_string request);
       output_char conn.coc '\n';
       flush conn.coc
     with Sys_error msg | Unix.Unix_error (_, msg, _) ->
       raise (Unreachable ("server connection lost: " ^ msg)));
    let line =
      try input_line conn.ic
      with End_of_file | Sys_error _ ->
        raise (Unreachable "server closed the connection")
    in
    match Json.of_string line with
    | Ok json -> json
    | Error msg ->
      E.raise_error (E.Parse_error { file = None; line = None; msg })

  let close conn =
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
end

let max_points = 20

let dist points i j =
  let xi, yi = points.(i) and xj, yj = points.(j) in
  sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))

(* Held-Karp over bitmask subsets.  dp.(mask).(last) = best length of a
   path visiting exactly [mask], ending at [last].  Paths are rooted at
   point 0 for tours; for open paths every root is tried by symmetry of
   the formulation below (start chosen via the singleton masks). *)
let held_karp points ~closed =
  let n = Array.length points in
  if n > max_points then invalid_arg "Tsp.Exact: too many points";
  if n < 2 then 0.0
  else begin
    let full = (1 lsl n) - 1 in
    let dp = Array.make_matrix (full + 1) n infinity in
    if closed then dp.(1).(0) <- 0.0
    else
      for s = 0 to n - 1 do
        dp.(1 lsl s).(s) <- 0.0
      done;
    for mask = 1 to full do
      for last = 0 to n - 1 do
        if dp.(mask).(last) < infinity then
          for next = 0 to n - 1 do
            if mask land (1 lsl next) = 0 then begin
              let mask' = mask lor (1 lsl next) in
              let cand = dp.(mask).(last) +. dist points last next in
              if cand < dp.(mask').(next) then dp.(mask').(next) <- cand
            end
          done
      done
    done;
    let best = ref infinity in
    for last = 0 to n - 1 do
      if dp.(full).(last) < infinity then begin
        let total =
          if closed then dp.(full).(last) +. dist points last 0
          else dp.(full).(last)
        in
        if total < !best then best := total
      end
    done;
    !best
  end

let shortest_tour points = held_karp points ~closed:true

let shortest_path points = held_karp points ~closed:false

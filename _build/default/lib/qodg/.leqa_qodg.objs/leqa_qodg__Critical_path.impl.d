lib/qodg/critical_path.ml: Array Dag Leqa_circuit List Qodg

lib/benchmarks/qft_adder.mli: Leqa_circuit

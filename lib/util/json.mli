(** Minimal JSON emitter and parser for machine-readable experiment
    results and reports — enough for the bench harness, the report
    renderer and the @report-smoke round-trip gate without an external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Strings are escaped per RFC 8259; non-finite
    floats render as [null] (JSON has no NaN/inf). *)

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value (RFC 8259 subset: no duplicate-key detection;
    numbers without [.], [e] or [E] that fit in an OCaml [int] parse as
    [Int], everything else as [Float]; [\uXXXX] escapes are decoded to
    UTF-8).  Trailing non-whitespace input is an error, as is container
    nesting deeper than 512 levels (a stack-exhaustion guard: the
    estimation server parses untrusted request lines with this
    function).  The error string names the byte offset of the
    failure. *)

val member : string -> t -> t option
(** [member key (Obj fields)] — [None] for missing keys or non-objects. *)

val keys : t -> string list
(** Key list of an [Obj] in emission order; [[]] otherwise. *)

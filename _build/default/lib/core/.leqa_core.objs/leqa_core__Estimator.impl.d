lib/core/estimator.ml: Array Config Coverage Leqa_circuit Leqa_fabric Leqa_iig Leqa_qodg List Presence_zone Routing_latency

lib/qspr/router.ml: Float Hashtbl Leqa_fabric Leqa_util List

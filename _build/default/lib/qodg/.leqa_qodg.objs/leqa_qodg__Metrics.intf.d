lib/qodg/metrics.mli: Format Qodg

module Ft_circuit = Leqa_circuit.Ft_circuit
module Ft_gate = Leqa_circuit.Ft_gate
module Circuit = Leqa_circuit.Circuit
module Gate = Leqa_circuit.Gate
module Rng = Leqa_util.Rng

let single_kinds = Array.of_list Ft_gate.all_single_kinds

let random_single rng q =
  let kind = single_kinds.(Rng.int rng ~bound:(Array.length single_kinds)) in
  Ft_gate.Single (kind, q)

let ft ~rng ~qubits ~gates ~cnot_fraction =
  if qubits < 2 then invalid_arg "Random_circuit.ft: need >= 2 qubits";
  if cnot_fraction < 0.0 || cnot_fraction > 1.0 then
    invalid_arg "Random_circuit.ft: fraction out of range";
  let circ = Ft_circuit.create ~num_qubits:qubits () in
  for _ = 1 to gates do
    if Rng.float rng < cnot_fraction then begin
      let control = Rng.int rng ~bound:qubits in
      let target =
        let t = Rng.int rng ~bound:(qubits - 1) in
        if t >= control then t + 1 else t
      in
      Ft_circuit.add circ (Ft_gate.Cnot { control; target })
    end
    else Ft_circuit.add circ (random_single rng (Rng.int rng ~bound:qubits))
  done;
  circ

let logical ~rng ~qubits ~gates =
  if qubits < 3 then invalid_arg "Random_circuit.logical: need >= 3 qubits";
  let circ = Circuit.create ~num_qubits:qubits () in
  let three_distinct () =
    let a = Rng.int rng ~bound:qubits in
    let b =
      let x = Rng.int rng ~bound:(qubits - 1) in
      if x >= a then x + 1 else x
    in
    let rec third () =
      let x = Rng.int rng ~bound:qubits in
      if x = a || x = b then third () else x
    in
    (a, b, third ())
  in
  for _ = 1 to gates do
    match Rng.int rng ~bound:4 with
    | 0 ->
      let q = Rng.int rng ~bound:qubits in
      Circuit.add circ (Gate.Single (Gate.H, q))
    | 1 ->
      let a, b, _ = three_distinct () in
      Circuit.add circ (Gate.Cnot { control = a; target = b })
    | 2 ->
      let a, b, c = three_distinct () in
      Circuit.add circ (Gate.Toffoli { c1 = a; c2 = b; target = c })
    | _ ->
      let a, b, c = three_distinct () in
      Circuit.add circ (Gate.Fredkin { control = a; t1 = b; t2 = c })
  done;
  circ

let local_ft ~rng ~qubits ~gates ~window =
  if qubits < 2 then invalid_arg "Random_circuit.local_ft: need >= 2 qubits";
  if window < 1 then invalid_arg "Random_circuit.local_ft: window must be >= 1";
  let circ = Ft_circuit.create ~num_qubits:qubits () in
  for _ = 1 to gates do
    if Rng.bool rng then begin
      let control = Rng.int rng ~bound:qubits in
      let lo = max 0 (control - window)
      and hi = min (qubits - 1) (control + window) in
      let rec partner () =
        let t = lo + Rng.int rng ~bound:(hi - lo + 1) in
        if t = control then partner () else t
      in
      if hi > lo then
        Ft_circuit.add circ (Ft_gate.Cnot { control; target = partner () })
      else Ft_circuit.add circ (random_single rng control)
    end
    else Ft_circuit.add circ (random_single rng (Rng.int rng ~bound:qubits))
  done;
  circ

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_seconds f = snd (time f)

let repeat_median ~runs f =
  if runs <= 0 then invalid_arg "Timing.repeat_median: runs must be positive";
  let samples = Array.make runs 0.0 in
  let last = ref None in
  for i = 0 to runs - 1 do
    let r, dt = time f in
    last := Some r;
    samples.(i) <- dt
  done;
  Array.sort compare samples;
  let median = samples.(runs / 2) in
  match !last with Some r -> (r, median) | None -> assert false

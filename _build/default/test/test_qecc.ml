open Leqa_qecc
module Params = Leqa_fabric.Params

let feq eps = Alcotest.(check (float eps))

let test_code_basics () =
  let c2 = Code.steane ~levels:2 in
  Alcotest.(check int) "levels" 2 (Code.levels c2);
  Alcotest.(check int) "49 physical" 49 (Code.physical_per_logical c2);
  Alcotest.(check int) "bare" 1 (Code.physical_per_logical (Code.steane ~levels:0));
  Alcotest.(check string) "name" "Steane[[7,1,3]] x2" (Code.name c2);
  Alcotest.(check string) "bare name" "bare (no QECC)"
    (Code.name (Code.steane ~levels:0))

let test_code_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Code.steane: negative levels")
    (fun () -> ignore (Code.steane ~levels:(-1)))

let test_delay_factor () =
  feq 1e-9 "level 1 is the baseline" 1.0
    (Code.delay_factor (Code.steane ~levels:1) ~per_level:20.0);
  feq 1e-9 "level 2" 20.0 (Code.delay_factor (Code.steane ~levels:2) ~per_level:20.0);
  feq 1e-9 "level 3" 400.0 (Code.delay_factor (Code.steane ~levels:3) ~per_level:20.0);
  feq 1e-9 "bare is cheaper" 0.05
    (Code.delay_factor (Code.steane ~levels:0) ~per_level:20.0)

let test_logical_error_rate_threshold_theorem () =
  let rate l =
    Code.logical_error_rate (Code.steane ~levels:l) ~physical_error_rate:1e-4
      ~threshold:1e-2
  in
  feq 1e-12 "level 0 = physical" 1e-4 (rate 0);
  (* ε_th (ε/ε_th)^2 = 1e-2 * (1e-2)^2 = 1e-6 *)
  feq 1e-15 "level 1" 1e-6 (rate 1);
  (* level 2: 1e-2 * (1e-2)^4 = 1e-10 *)
  feq 1e-18 "level 2" 1e-10 (rate 2);
  Alcotest.(check bool) "monotone suppression" true
    (rate 3 < rate 2 && rate 2 < rate 1 && rate 1 < rate 0)

let test_logical_error_above_threshold_grows () =
  (* above threshold, concatenation makes things worse — the theorem's
     other face *)
  let rate l =
    Code.logical_error_rate (Code.steane ~levels:l) ~physical_error_rate:0.05
      ~threshold:1e-2
  in
  Alcotest.(check bool) "worse" true (rate 2 > rate 1)

let test_logical_error_validation () =
  Alcotest.(check bool) "bad threshold rejected" true
    (try
       ignore
         (Code.logical_error_rate (Code.steane ~levels:1)
            ~physical_error_rate:1e-4 ~threshold:1.5);
       false
     with Invalid_argument _ -> true)

let ham15_qodg =
  lazy
    (Leqa_qodg.Qodg.of_ft_circuit
       (Leqa_circuit.Decompose.to_ft (Leqa_benchmarks.Hamming.circuit ~n:15 ())))

let test_evaluate_latency_scales_with_level () =
  let qodg = Lazy.force ham15_qodg in
  let eval levels =
    Selection.evaluate ~params:Params.calibrated
      ~requirement:Selection.default_requirement ~per_level_delay:20.0
      ~code:(Code.steane ~levels) qodg
  in
  let l1 = eval 1 and l2 = eval 2 in
  Alcotest.(check bool) "heavier code, slower program" true
    (l2.Selection.latency_s > 10.0 *. l1.Selection.latency_s)

let test_selection_picks_min_feasible () =
  let qodg = Lazy.force ham15_qodg in
  let candidates, chosen =
    Selection.select ~params:Params.calibrated
      ~requirement:Selection.default_requirement ~per_level_delay:20.0 qodg
  in
  Alcotest.(check int) "5 candidates (levels 0-4)" 5 (List.length candidates);
  match chosen with
  | None -> Alcotest.fail "no feasible code found for ham15"
  | Some c ->
    Alcotest.(check bool) "chosen is feasible" true c.Selection.feasible;
    (* no cheaper candidate is feasible *)
    List.iter
      (fun other ->
        if Code.levels other.Selection.code < Code.levels c.Selection.code
        then
          Alcotest.(check bool) "cheaper ones infeasible" false
            other.Selection.feasible)
      candidates

let test_selection_tight_budget_needs_more_code () =
  let qodg = Lazy.force ham15_qodg in
  let loose =
    { Selection.default_requirement with Selection.target_failure = 0.5 }
  in
  let tight =
    { Selection.default_requirement with Selection.target_failure = 1e-9 }
  in
  let pick requirement =
    match
      snd
        (Selection.select ~params:Params.calibrated ~requirement
           ~per_level_delay:20.0 qodg)
    with
    | Some c -> Code.levels c.Selection.code
    | None -> 99
  in
  Alcotest.(check bool) "tighter budget, more levels" true
    (pick tight >= pick loose)

let test_failure_probability_capped () =
  let qodg = Lazy.force ham15_qodg in
  let c =
    Selection.evaluate ~params:Params.calibrated
      ~requirement:
        {
          Selection.default_requirement with
          Selection.physical_error_rate = 9e-3 (* near threshold *);
        }
      ~per_level_delay:20.0 ~code:(Code.steane ~levels:0) qodg
  in
  Alcotest.(check bool) "capped at 1" true (c.Selection.failure_probability <= 1.0)

let suite =
  [
    Alcotest.test_case "code basics" `Quick test_code_basics;
    Alcotest.test_case "negative levels rejected" `Quick test_code_rejects_negative;
    Alcotest.test_case "delay factor" `Quick test_delay_factor;
    Alcotest.test_case "threshold-theorem suppression" `Quick
      test_logical_error_rate_threshold_theorem;
    Alcotest.test_case "above threshold grows" `Quick
      test_logical_error_above_threshold_grows;
    Alcotest.test_case "error-rate validation" `Quick test_logical_error_validation;
    Alcotest.test_case "latency scales with level" `Quick
      test_evaluate_latency_scales_with_level;
    Alcotest.test_case "selects minimum feasible level" `Quick
      test_selection_picks_min_feasible;
    Alcotest.test_case "budget tightness" `Quick
      test_selection_tight_budget_needs_more_code;
    Alcotest.test_case "failure probability capped" `Quick
      test_failure_probability_capped;
  ]

(** Small statistics toolkit used across the estimator, the experiment
    harness and the tests: summary statistics, weighted means (Eqs 7 and 12
    of the paper are weighted means), relative errors (Table 2), and
    power-law fits (the QSPR-scales-as-ops^1.5 claim of Section 4.2). *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val weighted_mean : weights:float array -> values:float array -> float
(** [Σ wᵢ vᵢ / Σ wᵢ]. Skips zero-weight entries; raises [Invalid_argument]
    if the arrays differ in length or total weight is not positive. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [\[0,100\]]. *)

val relative_error : actual:float -> estimated:float -> float
(** [|estimated - actual| / |actual|], as used in Table 2. *)

val fit_power_law : (float * float) list -> float * float
(** [fit_power_law xys] least-squares fit of [y = c · x^k] in log-log space;
    returns [(c, k)]. Points with non-positive coordinates are rejected. *)

val linear_regression : (float * float) list -> float * float
(** Least-squares [y = a + b·x]; returns [(a, b)]. *)

val geometric_mean : float array -> float

let dist points i j =
  let xi, yi = points.(i) and xj, yj = points.(j) in
  sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))

let nearest_neighbor_order points =
  let n = Array.length points in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  visited.(0) <- true;
  let current = ref 0 in
  for step = 1 to n - 1 do
    let best = ref (-1) and best_d = ref infinity in
    for j = 0 to n - 1 do
      if (not visited.(j)) && dist points !current j < !best_d then begin
        best := j;
        best_d := dist points !current j
      end
    done;
    visited.(!best) <- true;
    order.(step) <- !best;
    current := !best
  done;
  order

let path_length points order =
  let total = ref 0.0 in
  for i = 0 to Array.length order - 2 do
    total := !total +. dist points order.(i) order.(i + 1)
  done;
  !total

let nearest_neighbor_path points =
  if Array.length points < 2 then 0.0
  else path_length points (nearest_neighbor_order points)

(* 2-opt on an open path: reversing order[i..j] changes only the two
   boundary edges, so the improvement test is O(1) per candidate pair. *)
let two_opt points order =
  let n = Array.length order in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 3 do
      for j = i + 1 to n - 2 do
        let a = order.(i) and b = order.(i + 1) in
        let c = order.(j) and d = order.(j + 1) in
        let before = dist points a b +. dist points c d in
        let after = dist points a c +. dist points b d in
        if after +. 1e-12 < before then begin
          (* reverse order[i+1 .. j] *)
          let lo = ref (i + 1) and hi = ref j in
          while !lo < !hi do
            let tmp = order.(!lo) in
            order.(!lo) <- order.(!hi);
            order.(!hi) <- tmp;
            incr lo;
            decr hi
          done;
          improved := true
        end
      done
    done
  done

let two_opt_path points =
  if Array.length points < 2 then 0.0
  else begin
    let order = nearest_neighbor_order points in
    two_opt points order;
    path_length points order
  end

let monte_carlo_path_length ~rng ~points ~side ~trials =
  if trials <= 0 then invalid_arg "Heuristic: trials must be positive";
  if points < 0 then invalid_arg "Heuristic: negative point count";
  if points < 2 then 0.0
  else begin
    let total = ref 0.0 in
    for _ = 1 to trials do
      let instance =
        Array.init points (fun _ ->
            ( Leqa_util.Rng.float_range rng ~lo:0.0 ~hi:side,
              Leqa_util.Rng.float_range rng ~lo:0.0 ~hi:side ))
      in
      total := !total +. two_opt_path instance
    done;
    !total /. float_of_int trials
  end

open Leqa_circuit

let parse_ok input =
  match Parser.parse_string input with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse failed: %s" (Leqa_util.Error.to_string e)

let test_basic_gates () =
  let c =
    parse_ok
      ".v a,b,c\nBEGIN\nt1 a\nt2 a,b\nt3 a,b,c\nf3 a,b,c\nh a\ntdg b\nEND\n"
  in
  Alcotest.(check int) "wires" 3 (Circuit.num_qubits c);
  Alcotest.(check int) "gates" 6 (Circuit.num_gates c);
  let k = Circuit.counts c in
  Alcotest.(check int) "cnot" 1 k.Circuit.cnots;
  Alcotest.(check int) "toffoli" 1 k.Circuit.toffolis;
  Alcotest.(check int) "fredkin" 1 k.Circuit.fredkins;
  Alcotest.(check int) "singles (t1 + h + tdg)" 3 k.Circuit.singles

let test_mct () =
  let c = parse_ok ".v a,b,c,d,e\nBEGIN\nt5 a,b,c,d,e\nEND\n" in
  match Circuit.gate c 0 with
  | Gate.Mct { controls; target } ->
    Alcotest.(check (list int)) "controls" [ 0; 1; 2; 3 ] controls;
    Alcotest.(check int) "target" 4 target
  | g -> Alcotest.failf "expected MCT, got %s" (Gate.to_string g)

let test_comments_and_blanks () =
  let c = parse_ok "# header\n.v a,b\n\nBEGIN\nt2 a,b # inline\n\nEND\n" in
  Alcotest.(check int) "one gate" 1 (Circuit.num_gates c)

let test_errors () =
  let is_error input =
    match Parser.parse_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure for %S" input
  in
  is_error ".v a,b\nt2 a,b\nEND\n" (* gate before BEGIN *);
  is_error ".v a,b\nBEGIN\nt2 a,b\n" (* missing END *);
  is_error ".v a,b\nBEGIN\nbogus a\nEND\n" (* unknown mnemonic *);
  is_error ".v a\nBEGIN\nt2 a,a\nEND\n" (* duplicate operand *);
  is_error ".v a,b\nBEGIN\nEND\nt2 a,b\n" (* content after END *);
  is_error ".v a,b,a\nBEGIN\nEND\n" (* duplicate declaration, same line *);
  is_error ".v a\n.v b,a\nBEGIN\nEND\n" (* duplicate declaration, later line *)

let test_error_line_number () =
  match Parser.parse_string ".v a,b\nBEGIN\nt2 a,b\nbogus x\nEND\n" with
  | Error (Leqa_util.Error.Parse_error { line; _ }) ->
    Alcotest.(check (option int)) "line 4" (Some 4) line
  | Error e ->
    Alcotest.failf "expected Parse_error, got %s" (Leqa_util.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error"

let test_duplicate_operand_error_shape () =
  (* the satellite case from the issue: [t2 a,a] must be a Parse_error
     carrying the offending line *)
  match Parser.parse_string ".v a,b\nBEGIN\nt2 a,a\nEND\n" with
  | Error (Leqa_util.Error.Parse_error { line = Some 3; msg; _ }) ->
    Alcotest.(check bool) "mentions duplicate" true
      (String.length msg > 0)
  | Error e ->
    Alcotest.failf "expected Parse_error at line 3, got %s"
      (Leqa_util.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error"

let test_duplicate_declaration_error_shape () =
  match Parser.parse_string ".v a\n.v a\nBEGIN\nEND\n" with
  | Error (Leqa_util.Error.Parse_error { line = Some 2; _ }) -> ()
  | Error e ->
    Alcotest.failf "expected Parse_error at line 2, got %s"
      (Leqa_util.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error"

let test_declared_unused_wires () =
  let c = parse_ok ".v a,b,c,d\nBEGIN\nt2 a,b\nEND\n" in
  Alcotest.(check int) "4 wires kept" 4 (Circuit.num_qubits c)

let test_roundtrip () =
  let original =
    Circuit.of_gates ~num_qubits:5
      Gate.
        [
          Single (X, 0);
          Single (H, 1);
          Single (Tdg, 2);
          Cnot { control = 0; target = 3 };
          Toffoli { c1 = 1; c2 = 2; target = 4 };
          Fredkin { control = 0; t1 = 2; t2 = 3 };
          Mct { controls = [ 0; 1; 2 ]; target = 4 };
        ]
  in
  let reparsed = parse_ok (Parser.to_string original) in
  Alcotest.(check int) "wires" (Circuit.num_qubits original)
    (Circuit.num_qubits reparsed);
  Alcotest.(check int) "gates" (Circuit.num_gates original)
    (Circuit.num_gates reparsed);
  Circuit.iteri
    (fun i g ->
      Alcotest.(check string) "gate text" (Gate.to_string g)
        (Gate.to_string (Circuit.gate reparsed i)))
    original

let test_file_roundtrip () =
  let c = Leqa_benchmarks.Hamming.ham3 () in
  let path = Filename.temp_file "leqa_test" ".tfc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Parser.write_file path c;
      match Parser.parse_file path with
      | Ok reparsed ->
        Alcotest.(check int) "gates" (Circuit.num_gates c)
          (Circuit.num_gates reparsed)
      | Error e -> Alcotest.fail (Leqa_util.Error.to_string e))

let suite =
  [
    Alcotest.test_case "basic gate set" `Quick test_basic_gates;
    Alcotest.test_case "multi-controlled gate" `Quick test_mct;
    Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blanks;
    Alcotest.test_case "malformed inputs rejected" `Quick test_errors;
    Alcotest.test_case "errors carry line numbers" `Quick test_error_line_number;
    Alcotest.test_case "duplicate operand wire" `Quick
      test_duplicate_operand_error_shape;
    Alcotest.test_case "duplicate wire declaration" `Quick
      test_duplicate_declaration_error_shape;
    Alcotest.test_case "declared-unused wires" `Quick test_declared_unused_wires;
    Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
  ]

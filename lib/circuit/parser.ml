let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let split_wires s = String.split_on_char ',' s |> List.filter (fun w -> w <> "")

type state = {
  mutable names : (string, int) Hashtbl.t;
  mutable next : int;
  sink : Gate.t -> unit;  (* called per accepted gate, in program order *)
  on_begin : int -> unit;  (* called once with the declared wire count *)
  strict_wires : bool;  (* streaming mode: gates may not coin new wires *)
  mutable in_body : bool;
  mutable ended : bool;
}

exception Undeclared of string

let wire_id st name =
  match Hashtbl.find_opt st.names name with
  | Some i -> i
  | None ->
    (* the streaming decomposer numbers ancillas from the declared wire
       count, so a gate minting a wire mid-stream would collide with
       them; parse_string keeps the historical lazy assignment *)
    if st.strict_wires && st.in_body then raise (Undeclared name);
    let i = st.next in
    Hashtbl.add st.names name i;
    st.next <- st.next + 1;
    i

let gate_of_tokens st mnemonic operands =
  let wires = List.map (wire_id st) operands in
  let single kind =
    match wires with
    | [ q ] -> Ok (Gate.Single (kind, q))
    | _ -> Error "one-qubit gate takes exactly one wire"
  in
  match (String.lowercase_ascii mnemonic, wires) with
  | "t1", [ q ] -> Ok (Gate.Single (Gate.X, q))
  | "t2", [ control; target ] -> Ok (Gate.Cnot { control; target })
  | "t3", [ c1; c2; target ] -> Ok (Gate.Toffoli { c1; c2; target })
  | "f3", [ control; t1; t2 ] -> Ok (Gate.Fredkin { control; t1; t2 })
  | "x", _ -> single Gate.X
  | "y", _ -> single Gate.Y
  | "z", _ -> single Gate.Z
  | "h", _ -> single Gate.H
  | "s", _ -> single Gate.S
  | "sdg", _ -> single Gate.Sdg
  | "t", _ -> single Gate.T
  | "tdg", _ -> single Gate.Tdg
  | m, _ when String.length m >= 2 && (m.[0] = 't' || m.[0] = 'f') -> begin
    match int_of_string_opt (String.sub m 1 (String.length m - 1)) with
    | Some n when n >= 2 && List.length wires = n -> begin
      match (m.[0], List.rev wires) with
      | 't', target :: rev_controls ->
        Ok (Gate.Mct { controls = List.rev rev_controls; target })
      | 'f', t2 :: t1 :: rev_controls ->
        Ok (Gate.Mcf { controls = List.rev rev_controls; t1; t2 })
      | _ -> Error "malformed multi-controlled gate"
    end
    | Some n -> Error (Printf.sprintf "%s expects %d wires" m n)
    | None -> Error ("unknown mnemonic: " ^ mnemonic)
  end
  | _ -> Error ("unknown mnemonic: " ^ mnemonic)

let parse_line st lineno line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok ()
  else
    let fail msg = Error (`At (lineno, msg)) in
    match tokenize line with
    | [] -> Ok ()
    | keyword :: rest -> begin
      match String.lowercase_ascii keyword with
      | _ when st.ended -> fail "content after END"
      | ".v" when st.strict_wires && st.in_body ->
        fail "wire declaration after BEGIN (streaming mode needs all .v first)"
      | ".v" -> begin
        (* declaring a wire that already exists — within this .v line or
           from an earlier one — is a malformed netlist, not an alias *)
        let rec declare = function
          | [] -> Ok ()
          | w :: rest ->
            if Hashtbl.mem st.names w then
              fail (Printf.sprintf "duplicate wire declaration: %s" w)
            else begin
              ignore (wire_id st w);
              declare rest
            end
        in
        declare (List.concat_map split_wires rest)
      end
      | ".i" | ".o" | ".c" | ".ol" -> Ok () (* io annotations: ignored *)
      | "begin" ->
        if not st.in_body then begin
          st.in_body <- true;
          st.on_begin st.next
        end;
        Ok ()
      | "end" ->
        st.ended <- true;
        Ok ()
      | _ when not st.in_body -> fail "gate before BEGIN"
      | mnemonic -> begin
        let operands = List.concat_map split_wires rest in
        match gate_of_tokens st mnemonic operands with
        | Ok g -> begin
          match Gate.validate g with
          | Ok () ->
            st.sink g;
            Ok ()
          | Error msg -> fail msg
        end
        | Error msg -> fail msg
        | exception Undeclared w ->
          fail
            (Printf.sprintf
               "wire %s not declared before BEGIN (streaming mode requires \
                every wire in .v)"
               w)
      end
    end

let parse_string ?file input =
  let module E = Leqa_util.Error in
  match Leqa_util.Fault.hit_result "parser" with
  | Error _ as e -> e
  | Ok () ->
    let circuit = Circuit.create () in
    let st =
      {
        names = Hashtbl.create 64;
        next = 0;
        sink = Circuit.add circuit;
        on_begin = ignore;
        strict_wires = false;
        in_body = false;
        ended = false;
      }
    in
    let lines = String.split_on_char '\n' input in
    let rec walk lineno = function
      | [] -> if st.ended then Ok () else Error `Missing_end
      | line :: rest -> begin
        match parse_line st lineno line with
        | Ok () -> walk (lineno + 1) rest
        | Error _ as e -> e
      end
    in
    (match walk 1 lines with
    | Ok () ->
      (* declared-but-unused wires still count *)
      let declared = st.next in
      let c = circuit in
      if Circuit.num_qubits c < declared then begin
        let padded = Circuit.create ~num_qubits:declared () in
        Circuit.iter (Circuit.add padded) c;
        Ok padded
      end
      else Ok c
    | Error `Missing_end -> Error (E.parse_error ?file "missing END")
    | Error (`At (line, msg)) -> Error (E.parse_error ?file ~line msg))

let parse_file path =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | contents -> parse_string ~file:path contents
  | exception Sys_error msg -> Error (Leqa_util.Error.Io_error msg)

(* Streaming parse: one line resident at a time, gates handed to [f] as
   they are recognized.  Strict about wire declarations (see [wire_id]):
   every wire a gate names must appear in a .v line before BEGIN, so the
   final wire count is known the moment the body starts — the property
   the streaming decomposer's ancilla numbering relies on. *)
let iter_channel ?file ?(on_begin = ignore) ic ~f =
  let module E = Leqa_util.Error in
  match Leqa_util.Fault.hit_result "parser" with
  | Error _ as e -> e
  | Ok () ->
    let st =
      {
        names = Hashtbl.create 64;
        next = 0;
        sink = f;
        on_begin;
        strict_wires = true;
        in_body = false;
        ended = false;
      }
    in
    let rec walk lineno =
      match input_line ic with
      | line -> begin
        match parse_line st lineno line with
        | Ok () -> walk (lineno + 1)
        | Error _ as e -> e
      end
      | exception End_of_file -> if st.ended then Ok () else Error `Missing_end
    in
    (match walk 1 with
    | Ok () -> Ok st.next
    | Error `Missing_end -> Error (E.parse_error ?file "missing END")
    | Error (`At (line, msg)) -> Error (E.parse_error ?file ~line msg))

let iter_file ?on_begin path ~f =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> iter_channel ~file:path ?on_begin ic ~f)
  | exception Sys_error msg -> Error (Leqa_util.Error.Io_error msg)

let wire q = "q" ^ string_of_int q

let gate_line g =
  let joined qs = String.concat "," (List.map wire qs) in
  match g with
  | Gate.Single (Gate.X, q) -> "t1 " ^ wire q
  | Gate.Single (k, q) ->
    String.lowercase_ascii
      (match k with
      | Gate.X -> "x"
      | Gate.Y -> "y"
      | Gate.Z -> "z"
      | Gate.H -> "h"
      | Gate.S -> "s"
      | Gate.Sdg -> "sdg"
      | Gate.T -> "t"
      | Gate.Tdg -> "tdg")
    ^ " " ^ wire q
  | Gate.Cnot { control; target } -> "t2 " ^ joined [ control; target ]
  | Gate.Toffoli { c1; c2; target } -> "t3 " ^ joined [ c1; c2; target ]
  | Gate.Fredkin { control; t1; t2 } -> "f3 " ^ joined [ control; t1; t2 ]
  | Gate.Mct { controls; target } ->
    Printf.sprintf "t%d %s"
      (List.length controls + 1)
      (joined (controls @ [ target ]))
  | Gate.Mcf { controls; t1; t2 } ->
    Printf.sprintf "f%d %s"
      (List.length controls + 2)
      (joined (controls @ [ t1; t2 ]))

let to_string c =
  let buf = Buffer.create 1024 in
  let wires = List.init (Circuit.num_qubits c) wire in
  Buffer.add_string buf (".v " ^ String.concat "," wires ^ "\n");
  Buffer.add_string buf "BEGIN\n";
  Circuit.iter (fun g -> Buffer.add_string buf (gate_line g ^ "\n")) c;
  Buffer.add_string buf "END\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc

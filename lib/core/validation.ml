module Error = Leqa_util.Error
module Pool = Leqa_util.Pool

type result = {
  empirical_surfaces : float array;
  empirical_uncovered : float;
}

let measure ?(deadline = Pool.Deadline.never) ?side ~rng ~avg_area ~width
    ~height ~qubits ~trials ~qmax () =
  if trials <= 0 then invalid_arg "Validation.measure: trials <= 0";
  if qmax <= 0 then invalid_arg "Validation.measure: qmax <= 0";
  if qubits < 0 then invalid_arg "Validation.measure: negative qubits";
  let side =
    match side with
    | Some s -> s
    | None -> Coverage.zone_side ~avg_area ~width ~height
  in
  let anchors_x = width - side + 1 and anchors_y = height - side + 1 in
  (* A zone wider than the fabric leaves no anchor position; feeding the
     non-positive bound to Rng.int would raise a bare Invalid_argument
     from deep inside the trial loop, so reject it structurally here. *)
  if anchors_x <= 0 || anchors_y <= 0 then
    Error.raise_error
      (Error.Fabric_error
         (Printf.sprintf
            "zone side %d exceeds the %dx%d fabric: no anchor positions" side
            width height));
  let counts = Array.make (width * height) 0 in
  let surfaces = Array.make qmax 0.0 in
  let uncovered = ref 0.0 in
  for _ = 1 to trials do
    Pool.Deadline.check ~site:"mc.trial" deadline;
    Leqa_util.Fault.hit "mc.trial";
    Array.fill counts 0 (Array.length counts) 0;
    for _ = 1 to qubits do
      let ax = Leqa_util.Rng.int rng ~bound:anchors_x in
      let ay = Leqa_util.Rng.int rng ~bound:anchors_y in
      for dy = 0 to side - 1 do
        for dx = 0 to side - 1 do
          let idx = ((ay + dy) * width) + ax + dx in
          counts.(idx) <- counts.(idx) + 1
        done
      done
    done;
    Array.iter
      (fun c ->
        if c = 0 then uncovered := !uncovered +. 1.0
        else if c <= qmax then surfaces.(c - 1) <- surfaces.(c - 1) +. 1.0)
      counts
  done;
  let scale = 1.0 /. float_of_int trials in
  {
    empirical_surfaces = Array.map (fun s -> s *. scale) surfaces;
    empirical_uncovered = !uncovered *. scale;
  }

let max_abs_deviation ~expected ~empirical =
  let n = min (Array.length expected) (Array.length empirical) in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    worst := Float.max !worst (abs_float (expected.(i) -. empirical.(i)))
  done;
  !worst

module Geometry = Leqa_fabric.Geometry
module Params = Leqa_fabric.Params
module Qodg = Leqa_qodg.Qodg
module Dag = Leqa_qodg.Dag
module Ft_gate = Leqa_circuit.Ft_gate
module Heap = Leqa_util.Heap

type stats = {
  latency : float;
  ops_executed : int;
  swaps : int;
  shuttles : int;
  cnot_count : int;
  cnot_routing_total : float;
  single_count : int;
  single_routing_total : float;
}

let avg_cnot_routing s =
  if s.cnot_count = 0 then 0.0
  else s.cnot_routing_total /. float_of_int s.cnot_count

let latency_s s = s.latency /. 1e6

let suggested_v (p : Params.t) =
  Params.calibrated.Params.v *. p.Params.t_move /. (3.0 *. p.Params.d_cnot)

let calibrated_v = 6e-5

type state = {
  params : Params.t;
  positions : Geometry.coord array; (* qubit -> tile *)
  occupancy : int array; (* tile index -> qubit or -1 *)
  qubit_free : float array;
  ulb_free : float array;
  mutable swaps : int;
  mutable shuttles : int;
  mutable cnots : int;
  mutable cnot_routing : float;
  mutable singles : int;
  mutable single_routing : float;
  mutable executed : int;
}

let idx st c = Geometry.index ~width:st.params.Params.width c

let distance st a b =
  match st.params.Params.topology with
  | Params.Grid -> Geometry.manhattan a b
  | Params.Torus ->
    Geometry.torus_manhattan ~width:st.params.Params.width
      ~height:st.params.Params.height a b

let neighbors st c =
  match st.params.Params.topology with
  | Params.Grid ->
    Geometry.neighbors4 ~width:st.params.Params.width
      ~height:st.params.Params.height c
  | Params.Torus ->
    Geometry.torus_neighbors4 ~width:st.params.Params.width
      ~height:st.params.Params.height c

(* swap (or shuttle) qubit [q] from its tile into neighbouring tile [n],
   no earlier than [ready]; returns the completion time *)
let step_qubit st ~ready q n =
  let from = st.positions.(q) in
  let other = st.occupancy.(idx st n) in
  let base =
    Float.max ready
      (Float.max st.qubit_free.(q)
         (Float.max st.ulb_free.(idx st from) st.ulb_free.(idx st n)))
  in
  let start =
    if other >= 0 then Float.max base st.qubit_free.(other) else base
  in
  let cost =
    if other >= 0 then 3.0 *. st.params.Params.d_cnot
    else st.params.Params.t_move
  in
  let finish = start +. cost in
  (* exchange occupants *)
  st.occupancy.(idx st from) <- other;
  st.occupancy.(idx st n) <- q;
  st.positions.(q) <- n;
  st.qubit_free.(q) <- finish;
  if other >= 0 then begin
    st.positions.(other) <- from;
    st.qubit_free.(other) <- finish;
    st.swaps <- st.swaps + 1
  end
  else st.shuttles <- st.shuttles + 1;
  st.ulb_free.(idx st from) <- finish;
  st.ulb_free.(idx st n) <- finish;
  finish

let execute_single st ~ready kind q =
  let tile = st.positions.(q) in
  let start =
    Float.max ready (Float.max st.qubit_free.(q) st.ulb_free.(idx st tile))
  in
  let finish = start +. Params.single_delay st.params kind in
  st.qubit_free.(q) <- finish;
  st.ulb_free.(idx st tile) <- finish;
  st.singles <- st.singles + 1;
  st.single_routing <- st.single_routing +. (start -. ready);
  finish

let execute_cnot st ~ready ~control ~target =
  (* walk the control toward the target until adjacent; prefer empty
     neighbours (cheap shuttles) over occupied ones at equal progress *)
  let clock = ref ready in
  while distance st st.positions.(control) st.positions.(target) > 1 do
    let pc = st.positions.(control) and pt = st.positions.(target) in
    let candidates =
      List.filter (fun n -> distance st n pt < distance st pc pt) (neighbors st pc)
    in
    let best =
      match
        List.stable_sort
          (fun a b ->
            let occupied tile = if st.occupancy.(idx st tile) >= 0 then 1 else 0 in
            compare
              (occupied a, st.ulb_free.(idx st a), idx st a)
              (occupied b, st.ulb_free.(idx st b), idx st b))
          candidates
      with
      | best :: _ -> best
      | [] -> invalid_arg "Swap_mapper: no progress neighbour (corrupt state)"
    in
    clock := step_qubit st ~ready:!clock control best
  done;
  let pc = st.positions.(control) and pt = st.positions.(target) in
  let start =
    Float.max !clock
      (Float.max
         (Float.max st.qubit_free.(control) st.qubit_free.(target))
         (Float.max st.ulb_free.(idx st pc) st.ulb_free.(idx st pt)))
  in
  let finish = start +. st.params.Params.d_cnot in
  st.qubit_free.(control) <- finish;
  st.qubit_free.(target) <- finish;
  st.ulb_free.(idx st pc) <- finish;
  st.ulb_free.(idx st pt) <- finish;
  st.cnots <- st.cnots + 1;
  st.cnot_routing <- st.cnot_routing +. (start -. ready);
  finish

let run ~params ~placement qodg =
  Leqa_util.Error.ok_exn (Params.validate params);
  let width = params.Params.width and height = params.Params.height in
  let q = Qodg.num_qubits qodg in
  if q > width * height then
    invalid_arg "Swap_mapper.run: fabric too small for one qubit per ULB";
  let positions = Placement.place placement ~num_qubits:q ~width ~height in
  (* the one-per-ULB invariant must hold at the start *)
  let occupancy = Array.make (width * height) (-1) in
  Array.iteri
    (fun qi tile ->
      let i = Geometry.index ~width tile in
      if occupancy.(i) >= 0 then
        invalid_arg "Swap_mapper.run: placement maps two qubits to one ULB";
      occupancy.(i) <- qi)
    positions;
  let st =
    {
      params;
      positions;
      occupancy;
      qubit_free = Array.make (max q 1) 0.0;
      ulb_free = Array.make (width * height) 0.0;
      swaps = 0;
      shuttles = 0;
      cnots = 0;
      cnot_routing = 0.0;
      singles = 0;
      single_routing = 0.0;
      executed = 0;
    }
  in
  let dag = Qodg.dag qodg in
  let n = Qodg.num_nodes qodg in
  let pending = Array.init n (Dag.in_degree dag) in
  let ready_time = Array.make n 0.0 in
  let completion = Array.make n 0.0 in
  let events = Heap.create () in
  Heap.add events ~priority:0.0 (Qodg.start_node qodg);
  let relax node finish =
    completion.(node) <- finish;
    List.iter
      (fun succ ->
        ready_time.(succ) <- Float.max ready_time.(succ) finish;
        pending.(succ) <- pending.(succ) - 1;
        if pending.(succ) = 0 then
          Heap.add events ~priority:ready_time.(succ) succ)
      (Dag.succs dag node)
  in
  let rec drain () =
    match Heap.pop events with
    | None -> ()
    | Some (t, node) ->
      (match Qodg.kind qodg node with
      | Qodg.Start -> relax node 0.0
      | Qodg.Finish -> completion.(node) <- t
      | Qodg.Op g ->
        let finish =
          match g with
          | Ft_gate.Single (k, wire) -> execute_single st ~ready:t k wire
          | Ft_gate.Cnot { control; target } ->
            execute_cnot st ~ready:t ~control ~target
        in
        st.executed <- st.executed + 1;
        relax node finish);
      drain ()
  in
  drain ();
  {
    latency = completion.(Qodg.finish_node qodg);
    ops_executed = st.executed;
    swaps = st.swaps;
    shuttles = st.shuttles;
    cnot_count = st.cnots;
    cnot_routing_total = st.cnot_routing;
    single_count = st.singles;
    single_routing_total = st.single_routing;
  }

(* The calibration subsystem's deterministic core: regime bucketing,
   the typed parameter space, the checked-in tables, the budget rule,
   and the %.17g float canon the generated artifacts depend on. *)

module Calib_tables = Leqa_core.Calib_tables
module Space = Leqa_calib.Space
module Fit = Leqa_calib.Fit
module Render = Leqa_calib.Render
module Fingerprint = Leqa_util.Fingerprint
module Params = Leqa_fabric.Params
module Rng = Leqa_util.Rng
module E = Leqa_util.Error

(* ---- regime bucketing ------------------------------------------------ *)

let test_regime_cuts () =
  let key ~qubits_ft ~side =
    Calib_tables.regime_key
      (Calib_tables.regime_of ~qubits_ft ~width:side ~height:side)
  in
  (* utilization 2*50/100 = 1.0 >= 0.5, side 10 <= 16 *)
  Alcotest.(check string) "crowded-small" "crowded-small"
    (key ~qubits_ft:50 ~side:10);
  (* utilization 2*10/100 = 0.2 < 0.5 *)
  Alcotest.(check string) "spacious-small" "spacious-small"
    (key ~qubits_ft:10 ~side:10);
  (* side 17 > 16 *)
  Alcotest.(check string) "crowded-large" "crowded-large"
    (key ~qubits_ft:145 ~side:17);
  Alcotest.(check string) "spacious-large" "spacious-large"
    (key ~qubits_ft:10 ~side:17);
  (* the boundary itself is crowded: 2*25/100 = 0.5 *)
  Alcotest.(check string) "utilization boundary" "crowded-small"
    (key ~qubits_ft:25 ~side:10);
  (* side 16 is still small *)
  Alcotest.(check string) "side boundary" "spacious-small"
    (key ~qubits_ft:10 ~side:16)

let test_all_regimes_order () =
  Alcotest.(check (list string))
    "table order"
    [ "crowded-small"; "crowded-large"; "spacious-small"; "spacious-large" ]
    (List.map Calib_tables.regime_key Calib_tables.all_regimes)

(* ---- conventions ----------------------------------------------------- *)

let test_conventions_strings () =
  List.iter
    (fun c ->
      match
        Calib_tables.conventions_of_string (Calib_tables.conventions_to_string c)
      with
      | Ok c' -> Alcotest.(check bool) "round trip" true (c = c')
      | Error e -> Alcotest.fail (E.to_string e))
    [ Calib_tables.Default; Calib_tables.Calibrated; Calib_tables.Fitted ];
  match Calib_tables.conventions_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus conventions accepted"
  | Error e -> Alcotest.(check int) "usage error" 64 (E.exit_code e)

let test_resolve () =
  let p = Params.with_fabric Params.default ~width:10 ~height:10 in
  let d = Calib_tables.resolve ~conventions:Calib_tables.Default ~qubits_ft:10 p in
  Alcotest.(check (float 0.0)) "default keeps paper v"
    Params.default.Params.v d.Params.v;
  let c =
    Calib_tables.resolve ~conventions:Calib_tables.Calibrated ~qubits_ft:10 p
  in
  Alcotest.(check (float 0.0)) "calibrated v"
    Params.calibrated.Params.v c.Params.v;
  let f = Calib_tables.resolve ~conventions:Calib_tables.Fitted ~qubits_ft:10 p in
  let entry =
    Calib_tables.lookup (Calib_tables.regime_of ~qubits_ft:10 ~width:10 ~height:10)
  in
  Alcotest.(check (float 0.0)) "fitted v from table" entry.Calib_tables.e_v
    f.Params.v;
  Alcotest.(check (float 0.0)) "fitted t_move from table"
    entry.Calib_tables.e_t_move f.Params.t_move;
  (* fabric geometry is never touched by resolution *)
  Alcotest.(check int) "width kept" 10 f.Params.width;
  Alcotest.(check int) "height kept" 10 f.Params.height

let test_lookup_total () =
  (* every regime answers, and the entries came through the %.17g canon *)
  List.iter
    (fun r ->
      let e = Calib_tables.lookup r in
      let finite x = Float.is_finite x && x > 0.0 in
      Alcotest.(check bool)
        (Calib_tables.regime_key r ^ " finite")
        true
        (finite e.Calib_tables.e_v
        && finite e.Calib_tables.e_t_move
        && finite e.Calib_tables.e_lg_mult
        && finite e.Calib_tables.e_cong_slope))
    Calib_tables.all_regimes

(* ---- the parameter space --------------------------------------------- *)

let test_space_bounds () =
  List.iter
    (fun axis ->
      let lo, hi = Space.bounds axis in
      Alcotest.(check bool)
        (Space.axis_name axis ^ " bounds ordered")
        true
        (0.0 < lo && lo < hi);
      Alcotest.(check (float 0.0))
        (Space.axis_name axis ^ " clamp low")
        lo
        (Space.clamp axis (lo /. 10.0));
      Alcotest.(check (float 0.0))
        (Space.axis_name axis ^ " clamp high")
        hi
        (Space.clamp axis (hi *. 10.0));
      (* both priors sit inside the search box *)
      List.iter
        (fun p ->
          let x = Space.get p axis in
          Alcotest.(check bool)
            (Space.axis_name axis ^ " prior in bounds")
            true
            (lo <= x && x <= hi))
        [ Space.prior; Space.paper_default ])
    Space.axes

let test_space_sample_deterministic () =
  let draw () = Space.sample (Rng.create ~seed:77) in
  Alcotest.(check bool) "same seed, same point" true
    (Space.equal (draw ()) (draw ()));
  let p = draw () in
  List.iter
    (fun axis ->
      let lo, hi = Space.bounds axis in
      let x = Space.get p axis in
      Alcotest.(check bool)
        (Space.axis_name axis ^ " sample in bounds")
        true
        (lo <= x && x <= hi))
    Space.axes

let test_space_place_round_trip () =
  let point = Space.sample (Rng.create ~seed:3) in
  let placed = Space.place point Params.default in
  Alcotest.(check bool) "of_params inverts place" true
    (Space.equal point (Space.of_params placed));
  Alcotest.(check int) "place keeps width" Params.default.Params.width
    placed.Params.width

(* ---- loss and budget rule -------------------------------------------- *)

let test_loss () =
  let stats =
    { Leqa_diff.Harness.obj_mean = 0.04; obj_worst = 0.10; obj_cases = 7 }
  in
  Alcotest.(check (float 1e-12)) "mean + worst/2" 0.09 (Fit.loss stats)

let test_budget_pct () =
  Alcotest.(check int) "floor" 5 (Render.budget_pct 0.001);
  Alcotest.(check int) "2x worst, rounded up" 13 (Render.budget_pct 0.0601);
  Alcotest.(check int) "cap" 15 (Render.budget_pct 0.40)

(* ---- %.17g canon: property test -------------------------------------- *)

let float_repr_round_trip =
  QCheck.Test.make ~count:500 ~name:"float_repr round-trips bitwise"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      let s = Fingerprint.float_repr ~field:"qcheck" f in
      let back = float_of_string s in
      (* bitwise equality, except -0.0 canonicalizes to 0 by design *)
      let same =
        if f = 0.0 then back = 0.0
        else Int64.equal (Int64.bits_of_float back) (Int64.bits_of_float f)
      in
      (* and the printed form is a fixed point: repr (parse (repr f)) *)
      same && String.equal s (Fingerprint.float_repr ~field:"qcheck" back))

let test_float_repr_edges () =
  Alcotest.(check string) "-0.0 collapses" "0"
    (Fingerprint.float_repr ~field:"edge" (-0.0));
  (match Fingerprint.float_repr ~field:"edge" Float.nan with
  | _ -> Alcotest.fail "nan accepted"
  | exception E.Error e ->
    Alcotest.(check int) "nan is a usage error" 64 (E.exit_code e));
  match Fingerprint.float_repr ~field:"edge" Float.infinity with
  | _ -> Alcotest.fail "inf accepted"
  | exception E.Error _ -> ()

let suite =
  [
    Alcotest.test_case "regime cuts" `Quick test_regime_cuts;
    Alcotest.test_case "all_regimes order" `Quick test_all_regimes_order;
    Alcotest.test_case "conventions strings" `Quick test_conventions_strings;
    Alcotest.test_case "resolve per conventions" `Quick test_resolve;
    Alcotest.test_case "lookup total over regimes" `Quick test_lookup_total;
    Alcotest.test_case "space bounds and clamp" `Quick test_space_bounds;
    Alcotest.test_case "space sample deterministic" `Quick
      test_space_sample_deterministic;
    Alcotest.test_case "space place round-trip" `Quick
      test_space_place_round_trip;
    Alcotest.test_case "loss = mean + worst/2" `Quick test_loss;
    Alcotest.test_case "budget rule clamps" `Quick test_budget_pct;
    QCheck_alcotest.to_alcotest float_repr_round_trip;
    Alcotest.test_case "float_repr edge cases" `Quick test_float_repr_edges;
  ]

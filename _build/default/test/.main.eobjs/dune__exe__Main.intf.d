test/main.mli:

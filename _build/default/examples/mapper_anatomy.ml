(* Anatomy of a detailed mapping — what LEQA abstracts away.

   Runs the QSPR baseline with tracing enabled on one benchmark, then
   prints the mapper's inner life: the fabric-occupancy heat map (the
   empirical picture behind the paper's Figure 3 presence zones), the
   hottest ULBs, and the measured average routing latencies next to the
   statistical quantities LEQA computes for the same circuit.

   Run with: dune exec examples/mapper_anatomy.exe *)

module Trace = Leqa_qspr.Trace
module Scheduler = Leqa_qspr.Scheduler
module Params = Leqa_fabric.Params

let () =
  let circ = Leqa_benchmarks.Gf2_mult.circuit ~n:24 () in
  let ft = Leqa_circuit.Decompose.to_ft circ in
  let qodg = Leqa_qodg.Qodg.of_ft_circuit ft in
  Format.printf "Workload: gf2^24mult — %a@.@."
    Leqa_circuit.Ft_circuit.pp_summary ft;

  (* a small fabric so the heat map is legible *)
  let params = Params.with_fabric Params.default ~width:24 ~height:24 in
  let config = { Leqa_qspr.Qspr.default_config with Leqa_qspr.Qspr.params } in
  let trace = Trace.create () in
  let r = Leqa_qspr.Qspr.run ~config ~trace qodg in
  Printf.printf "actual latency: %.3f s, %d traced operations\n\n"
    r.Leqa_qspr.Qspr.latency_s (Trace.length trace);

  Printf.printf "fabric occupancy (busy-time deciles, '.'=idle .. '9'=hottest):\n%s\n"
    (Trace.occupancy_ascii trace ~width:24 ~height:24);

  Printf.printf "busiest channel segments:\n";
  List.iteri
    (fun i ((a, b), count) ->
      if i < 5 then
        Format.printf "  %a-%a : %d crossings@." Leqa_fabric.Geometry.pp a
          Leqa_fabric.Geometry.pp b count)
    r.Leqa_qspr.Qspr.stats.Leqa_qspr.Scheduler.top_segments;
  Printf.printf "\nhottest ULBs:\n";
  List.iter
    (fun (tile, busy) ->
      Format.printf "  %a : %.0f us busy@." Leqa_fabric.Geometry.pp tile busy)
    (Trace.busiest_tiles trace ~width:24 ~top:5);

  (* measured vs modelled routing latency *)
  let s = r.Leqa_qspr.Qspr.stats in
  let est =
    Leqa_core.Estimator.estimate
      ~params:{ params with Params.v = Params.calibrated.Params.v }
      qodg
  in
  Printf.printf
    "\nrouting latency, measured (QSPR trace) vs modelled (LEQA):\n\
    \  CNOT   : %.0f us measured   vs   L_CNOT^avg = %.0f us\n\
    \  1-qubit: %.0f us measured   vs   L_g^avg    = %.0f us\n"
    (Scheduler.avg_cnot_routing s)
    est.Leqa_core.Estimator.l_cnot_avg
    (Scheduler.avg_single_routing s)
    est.Leqa_core.Estimator.l_single_avg;
  Printf.printf
    "\nthe mapper produced %d channel hops and explored %d router nodes to\n\
     learn those two numbers; LEQA computed its pair from the IIG alone.\n"
    s.Scheduler.hops s.Scheduler.search_nodes

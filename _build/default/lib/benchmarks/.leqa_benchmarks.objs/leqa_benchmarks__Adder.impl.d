lib/benchmarks/adder.ml: Leqa_circuit List

module Pool = Leqa_util.Pool
module Coverage = Leqa_core.Coverage

exception Boom

let with_pool ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_create_invalid () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

let test_map_matches_list_map () =
  (* empty, singleton, odd-sized and chunk-straddling inputs, at width 1
     (sequential fallback) and width 4 *)
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let input = List.init n (fun i -> i - 3) in
              let f x = (x * x) + 1 in
              Alcotest.(check (list int))
                (Printf.sprintf "jobs=%d n=%d" jobs n)
                (List.map f input)
                (Pool.map_list pool ~f input))
            [ 0; 1; 7; 129; 1001 ]))
    [ 1; 4 ]

let test_map_weighted_matches_list_map () =
  (* the weight only moves chunk boundaries — never the result; zero and
     negative weights are clamped, not an error *)
  let weights =
    [
      ("uniform", fun _ -> 1);
      ("skewed", fun x -> (abs x * 17) + 1);
      ("zero", fun _ -> 0);
      ("negative", fun x -> -x);
    ]
  in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          List.iter
            (fun (wname, weight) ->
              List.iter
                (fun n ->
                  let input = List.init n (fun i -> i - 3) in
                  let f x = (x * 7) - 1 in
                  Alcotest.(check (list int))
                    (Printf.sprintf "jobs=%d weight=%s n=%d" jobs wname n)
                    (List.map f input)
                    (Pool.map_list_weighted pool ~weight ~f input))
                [ 0; 1; 7; 129 ])
            weights))
    [ 1; 4 ]

let test_map_preserves_order () =
  with_pool ~jobs:4 (fun pool ->
      let input = Array.init 500 (fun i -> i) in
      let result = Pool.parallel_map pool ~f:(fun i -> 2 * i) input in
      Array.iteri
        (fun i v -> if v <> 2 * i then Alcotest.failf "index %d got %d" i v)
        result)

let test_exception_propagates_and_pool_survives () =
  with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "first error re-raised" Boom (fun () ->
          ignore
            (Pool.parallel_map pool
               ~f:(fun i -> if i = 5 then raise Boom else i)
               (Array.init 64 Fun.id)));
      (* the failed batch must drain fully and leave the pool reusable *)
      let r = Pool.parallel_map pool ~f:(fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (list int)) "reusable after failure" [ 2; 3; 4 ]
        (Array.to_list r);
      Alcotest.check_raises "fails again too" Boom (fun () ->
          ignore (Pool.map_list pool ~f:(fun _ -> raise Boom) [ 1 ]));
      Alcotest.(check (list int)) "and recovers again" [ 10 ]
        (Pool.map_list pool ~f:(fun x -> 10 * x) [ 1 ]))

let test_parallel_for_covers_indices () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          let n = 1000 in
          let hits = Array.make n 0 in
          (* disjoint writes: each index is touched by exactly one task *)
          Pool.parallel_for pool ~chunk:64 n (fun i -> hits.(i) <- hits.(i) + 1);
          Array.iteri
            (fun i h ->
              if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
            hits))
    [ 1; 4 ]

let test_reduce_chunks_deterministic_float_sum () =
  (* a non-associative combine (float sum): chunk decomposition is fixed,
     so the bits must match at every pool width *)
  let n = 10_000 in
  let map lo hi =
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. (1.0 /. float_of_int (i + 1))
    done;
    !acc
  in
  let sum pool =
    Pool.reduce_chunks pool ~chunk:128 ~n ~map ~combine:( +. ) ~init:0.0 ()
  in
  let s1 = with_pool ~jobs:1 sum in
  let s4 = with_pool ~jobs:4 sum in
  Alcotest.(check bool) "bitwise equal" true
    (Int64.equal (Int64.bits_of_float s1) (Int64.bits_of_float s4));
  Alcotest.check_raises "chunk validation"
    (Invalid_argument "Pool.reduce_chunks: chunk must be >= 1") (fun () ->
      ignore
        (with_pool ~jobs:1 (fun pool ->
             Pool.reduce_chunks pool ~chunk:0 ~n:1 ~map:(fun _ _ -> 0)
               ~combine:( + ) ~init:0 ())))

let test_nested_parallelism () =
  (* a task that itself fans out over the same pool must not deadlock *)
  with_pool ~jobs:3 (fun pool ->
      let outer =
        Pool.map_list pool
          ~f:(fun i ->
            List.fold_left ( + ) 0
              (Pool.map_list pool ~f:(fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested result" [ 36; 66; 96; 126 ] outer)

let test_expected_surfaces_bitwise_across_widths () =
  (* the tentpole determinism contract: jobs=1 and jobs=4 produce
     bit-for-bit identical Eq-4 vectors (cold caches both times) *)
  let compute () =
    Coverage.clear_caches ();
    Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid
      ~avg_area:13.0 ~width:40 ~height:40 ~qubits:150 ~terms:20
  in
  Pool.set_default_jobs 1;
  let serial = compute () in
  Pool.set_default_jobs 4;
  let parallel = compute () in
  Pool.set_default_jobs 1;
  Alcotest.(check int) "same length" (Array.length serial)
    (Array.length parallel);
  Array.iteri
    (fun i v ->
      if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float parallel.(i)))
      then Alcotest.failf "E[S_%d] differs: %.17g vs %.17g" (i + 1) v parallel.(i))
    serial

let test_surfaces_cache_hit_is_identical () =
  Coverage.clear_caches ();
  let args () =
    Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Torus
      ~avg_area:9.0 ~width:24 ~height:24 ~qubits:30 ~terms:20
  in
  let cold = args () in
  let warm = args () in
  Alcotest.(check (array (float 0.0))) "cache returns equal vector" cold warm;
  (* cached arrays are copies: mutating one must not poison the cache *)
  warm.(0) <- nan;
  let again = args () in
  Alcotest.(check (float 0.0)) "cache unpoisoned" cold.(0) again.(0)

let test_deadline_basics () =
  let d = Pool.Deadline.after ~seconds:3600.0 in
  Alcotest.(check bool) "fresh deadline live" false (Pool.Deadline.expired d);
  Alcotest.(check bool) "remaining positive" true (Pool.Deadline.remaining_s d > 0.0);
  Pool.Deadline.check d;
  Alcotest.(check bool) "never lives" false (Pool.Deadline.expired Pool.Deadline.never);
  Alcotest.(check bool) "never is infinite" true
    (Pool.Deadline.remaining_s Pool.Deadline.never = infinity);
  Alcotest.check_raises "non-positive budget rejected"
    (Leqa_util.Error.Error
       (Leqa_util.Error.Usage_error "deadline must be a positive number of seconds"))
    (fun () -> ignore (Pool.Deadline.after ~seconds:0.0))

let expired_deadline () =
  (* a real (not mocked) deadline that is already over: smallest budget,
     then busy-wait past it *)
  let d = Pool.Deadline.after ~seconds:1e-9 in
  while not (Pool.Deadline.expired d) do ignore (Sys.opaque_identity ()) done;
  d

let test_deadline_cancels_combinators () =
  with_pool ~jobs:4 (fun pool ->
      let d = expired_deadline () in
      let timed_out f =
        match f () with
        | _ -> false
        | exception Leqa_util.Error.Error (Leqa_util.Error.Timed_out _) -> true
      in
      Alcotest.(check bool) "parallel_for" true
        (timed_out (fun () ->
             Pool.parallel_for pool ~deadline:d ~chunk:8 100 ignore));
      Alcotest.(check bool) "parallel_map" true
        (timed_out (fun () ->
             Pool.parallel_map pool ~deadline:d ~f:Fun.id (Array.make 10 0)));
      Alcotest.(check bool) "reduce_chunks" true
        (timed_out (fun () ->
             Pool.reduce_chunks pool ~deadline:d ~chunk:4 ~n:64
               ~map:(fun _ _ -> 1) ~combine:( + ) ~init:0 ()));
      (* expiry must not wedge the pool *)
      Alcotest.(check (list int)) "pool reusable after timeout" [ 2; 4 ]
        (Pool.map_list pool ~f:(fun x -> 2 * x) [ 1; 2 ]);
      (* and a live deadline lets work through *)
      let live = Pool.Deadline.after ~seconds:3600.0 in
      Alcotest.(check bool) "live deadline passes" false
        (timed_out (fun () ->
             Pool.parallel_for pool ~deadline:live ~chunk:8 100 ignore)))

let test_run_with_deadline () =
  (* a cooperative loop that checks its token stops with Error; the happy
     path reports Ok with the value *)
  (match
     Pool.run_with_deadline ~seconds:1e-6 (fun d ->
         while true do
           Pool.Deadline.check d
         done)
   with
  | Ok () -> Alcotest.fail "infinite loop terminated?"
  | Error (Leqa_util.Error.Timed_out { budget_s; _ }) ->
    Alcotest.(check (float 0.0)) "budget recorded" 1e-6 budget_s
  | Error e -> Alcotest.failf "wrong error: %s" (Leqa_util.Error.to_string e));
  match Pool.run_with_deadline ~seconds:3600.0 (fun _ -> 42) with
  | Ok v -> Alcotest.(check int) "value through" 42 v
  | Error e -> Alcotest.failf "unexpected: %s" (Leqa_util.Error.to_string e)

let test_default_jobs_override () =
  Pool.set_default_jobs 2;
  Alcotest.(check int) "override respected" 2 (Pool.default_jobs ());
  Alcotest.(check int) "default pool width" 2 (Pool.jobs (Pool.get_default ()));
  Pool.set_default_jobs 1;
  Alcotest.(check int) "reset" 1 (Pool.jobs (Pool.get_default ()))

let suite =
  [
    Alcotest.test_case "create validates jobs" `Quick test_create_invalid;
    Alcotest.test_case "map = List.map (0/1/odd sizes)" `Quick
      test_map_matches_list_map;
    Alcotest.test_case "map_weighted = List.map (any weight)" `Quick
      test_map_weighted_matches_list_map;
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "exceptions propagate; pool reusable" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "parallel_for covers every index once" `Quick
      test_parallel_for_covers_indices;
    Alcotest.test_case "chunked float reduction is width-invariant" `Quick
      test_reduce_chunks_deterministic_float_sum;
    Alcotest.test_case "nested parallelism does not deadlock" `Quick
      test_nested_parallelism;
    Alcotest.test_case "E[S_q] bitwise identical at jobs=1 and 4" `Quick
      test_expected_surfaces_bitwise_across_widths;
    Alcotest.test_case "coverage cache hit = recompute" `Quick
      test_surfaces_cache_hit_is_identical;
    Alcotest.test_case "deadline tokens" `Quick test_deadline_basics;
    Alcotest.test_case "deadline cancels combinators" `Quick
      test_deadline_cancels_combinators;
    Alcotest.test_case "run_with_deadline" `Quick test_run_with_deadline;
    Alcotest.test_case "default-pool width override" `Quick
      test_default_jobs_override;
  ]

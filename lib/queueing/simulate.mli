(** Discrete-event simulation of a single queue, used to validate the
    closed-form M/M/1 results of {!Mm1} empirically (the Figure 5 model).

    The simulator draws Poisson arrivals and exponential services from a
    deterministic {!Leqa_util.Rng.t}, so results are reproducible. *)

type result = {
  avg_queue_length : float;  (** time-averaged number in system *)
  avg_sojourn_time : float;  (** mean time from arrival to departure *)
  customers_served : int;
}

val run :
  rng:Leqa_util.Rng.t ->
  lambda:float ->
  mu:float ->
  horizon:float ->
  result
(** Simulate an M/M/1 queue over [0, horizon] time units.
    @raise Invalid_argument unless [0 < lambda < mu] and [horizon > 0]. *)

val run_multi_server :
  rng:Leqa_util.Rng.t ->
  lambda:float ->
  mu_per_server:float ->
  servers:int ->
  horizon:float ->
  result
(** M/M/c variant mirroring a capacity-[c] routing channel: [c] parallel
    servers, each with rate [mu_per_server]. *)

type summary = {
  replications : int;
  mean_queue_length : float;
  mean_sojourn_time : float;
  std_sojourn_time : float;  (** population std-dev across replications *)
  total_served : int;
}

val summarize : result array -> summary
(** Aggregate independent replications (sequential, index-order folds —
    deterministic).  @raise Invalid_argument on an empty array. *)

val run_replications :
  ?pool:Leqa_util.Pool.t ->
  ?deadline:Leqa_util.Pool.Deadline.t ->
  seed:int ->
  replications:int ->
  lambda:float ->
  mu_per_server:float ->
  servers:int ->
  horizon:float ->
  unit ->
  result array
(** Run [replications] independent copies of {!run_multi_server} over the
    pool (default: {!Leqa_util.Pool.get_default}).  Each replication
    draws from its own stream split deterministically from [seed], so
    the same master seed yields bit-for-bit identical per-replication
    results — and therefore identical {!summarize} statistics — at any
    pool width.  The [deadline] is checked once per replication; on
    expiry the batch drains and [Error.Error (Timed_out _)] is raised. *)

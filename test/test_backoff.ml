module Backoff = Leqa_util.Backoff

let test_deterministic () =
  let a = Backoff.delay_s ~seed:7 ~attempt:3 () in
  let b = Backoff.delay_s ~seed:7 ~attempt:3 () in
  Alcotest.(check (float 0.0)) "same (seed, attempt), same delay" a b;
  let c = Backoff.delay_s ~seed:8 ~attempt:3 () in
  Alcotest.(check bool) "different seed, different jitter" true (a <> c)

let test_bounds () =
  (* equal jitter: attempt k lands in [d/2, d], d = min cap (base*2^(k-1)) *)
  for attempt = 1 to 20 do
    let d =
      Float.min Backoff.default_cap_s
        (Backoff.default_base_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
    in
    let got = Backoff.delay_s ~seed:42 ~attempt () in
    if got < (d /. 2.0) -. 1e-12 || got > d +. 1e-12 then
      Alcotest.failf "attempt %d: %g outside [%g, %g]" attempt got (d /. 2.0) d
  done

let test_cap () =
  let huge = Backoff.delay_s ~seed:1 ~attempt:1000 () in
  Alcotest.(check bool) "capped" true (huge <= Backoff.default_cap_s)

let test_escalates () =
  (* the deterministic schedule must actually back off: each attempt's
     upper bound doubles until the cap, so delay(k+2) > delay(k) holds
     eventually; check the coarse shape on the floor values *)
  let floor_of attempt =
    Float.min Backoff.default_cap_s
      (Backoff.default_base_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
    /. 2.0
  in
  Alcotest.(check bool) "floors escalate" true
    (floor_of 1 < floor_of 4 && floor_of 4 < floor_of 8)

let test_validation () =
  let raises f =
    match f () with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "attempt 0 rejected" true
    (raises (fun () -> Backoff.delay_s ~seed:1 ~attempt:0 ()));
  Alcotest.(check bool) "negative base rejected" true
    (raises (fun () -> Backoff.delay_s ~base_s:(-1.0) ~seed:1 ~attempt:1 ()));
  Alcotest.(check bool) "cap below base rejected" true
    (raises (fun () ->
         Backoff.delay_s ~base_s:1.0 ~cap_s:0.5 ~seed:1 ~attempt:1 ()))

let test_sleep_interruptible () =
  let t0 = Unix.gettimeofday () in
  Backoff.sleep_interruptible ~should_stop:(fun () -> true) 30.0;
  Alcotest.(check bool) "stops immediately" true
    (Unix.gettimeofday () -. t0 < 1.0)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "cap" `Quick test_cap;
    Alcotest.test_case "escalates" `Quick test_escalates;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "sleep interruptible" `Quick test_sleep_interruptible;
  ]

lib/util/stats.mli:

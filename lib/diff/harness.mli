(** Case generation, the run loop, and the reproducer corpus
    (DESIGN.md §10).

    Three case sources — the paper's benchmark suite across a per-circuit
    fabric grid, seeded random circuits, and a single user-supplied
    circuit — feed one {!run} loop that scores every case with
    {!Diff.run_case}, shrinks failures with {!Shrink.shrink}, and writes
    each shrunk reproducer to the corpus directory as a [.tfc] netlist
    whose [#]-comment header records the fabric, budget and failure
    classification.  {!replay} parses that corpus back into cases, so
    every past accuracy bug stays a permanent regression test. *)

type reproducer = {
  shrunk : Diff.case;
  shrunk_outcome : Diff.outcome;
  shrink_stats : Shrink.stats;
  path : string option;  (** where the netlist was written, if anywhere *)
}

type row = {
  case : Diff.case;
  outcome : Diff.outcome;
  reproducer : reproducer option;  (** present iff the case failed *)
}

type summary = {
  rows : row list;  (** in case order *)
  cases : int;
  failures : int;
  degraded : int;
}

val default_scale : float
(** 0.25 — shrinks every suite family enough that the QSPR half of each
    case runs in well under a second. *)

val sides_for : Leqa_circuit.Circuit.t -> int list
(** The fabric grid for a circuit: [[s; 2s]] with
    [s = max 4 ⌈√(2·Q_ft)⌉] — one crowded fabric and one spacious one,
    bracketing the regimes of Table 2. *)

val suite_cases : ?scale:float -> unit -> Diff.case list
(** Every benchmark of {!Leqa_benchmarks.Suite.all} at [scale]
    (default {!default_scale}), once per {!sides_for} fabric, with its
    {!Budget} budget. *)

val random_cases :
  ?budget:float -> seed:int -> count:int -> unit -> Diff.case list
(** [count] seeded logical circuits from
    {!Leqa_benchmarks.Random_circuit.logical} with varied qubit/gate
    sizes, on their {!sides_for} fabrics ([budget] defaults to
    {!Budget.default}).  Deterministic in [seed]. *)

val single_cases :
  ?budget:float -> label:string -> Leqa_circuit.Circuit.t -> Diff.case list
(** One user-supplied circuit across its {!sides_for} fabric grid. *)

type training_case = {
  t_case : Diff.case;
  t_qubits_ft : int;  (** FT qubit count — picks the fabric regime *)
  t_weight : int;  (** pool chunking weight (FT gates × fabric area) *)
  t_prepared : Leqa_core.Estimator.prepared;
      (** QODG prefix, reused for every candidate evaluation *)
  t_simulated_us : float;  (** QSPR ground truth, paper-default [v] *)
}

val training_corpus :
  ?scale:float ->
  ?deadline_s:float ->
  ?benches:string list ->
  ?random_count:int ->
  seed:int ->
  ?pool:Leqa_util.Pool.t ->
  ?telemetry:Leqa_util.Telemetry.t ->
  unit ->
  training_case list
(** The calibration corpus: {!suite_cases} at [scale] (default
    {!default_scale}) plus [random_count] (default 16) circuits from
    {!random_cases} under [seed].  [benches] restricts the suite half to
    the named benchmarks {e before} any simulation runs — the small-fit
    smoke path.  QSPR runs {e once} per case here —
    the reference latencies do not depend on the candidate parameters,
    so {!objective} never re-runs the mapper.  Cases whose simulation
    fails, times out, or yields a non-positive latency are dropped
    deterministically.  The fan-out preserves case order: the corpus is
    identical at every pool width, and byte-identical for a given
    [seed].  Wrapped in a ["calib.corpus"] span. *)

type objective_stats = {
  obj_mean : float;  (** mean relative error over the corpus *)
  obj_worst : float;  (** worst-case relative error *)
  obj_cases : int;
}

val objective :
  ?pool:Leqa_util.Pool.t ->
  ?telemetry:Leqa_util.Telemetry.t ->
  params_for:(training_case -> Leqa_fabric.Params.t) ->
  training_case list ->
  objective_stats
(** Evaluate a candidate parameter point: run the analytic estimator on
    every prepared case with [params_for] (typically the candidate
    point placed on the case's fabric) and fold relative errors against
    the stored QSPR latencies.  Evaluation fans across [pool]; the
    mean/worst fold is serial and in case order, so the stats are
    identical at every pool width.  A crash or non-finite error under a
    candidate scores a large finite penalty instead of raising.
    Wrapped in a ["calib.objective"] span. *)

val run :
  ?deadline_s:float ->
  ?conventions:Leqa_core.Calib_tables.conventions ->
  ?shrink:bool ->
  ?shrink_dir:string ->
  ?max_evals:int ->
  ?pool:Leqa_util.Pool.t ->
  ?telemetry:Leqa_util.Telemetry.t ->
  Diff.case list ->
  summary
(** Score every case ([deadline_s] bounds each case's simulation half;
    [conventions], default [Fitted], picks the estimator's parameter
    resolution for scoring {e and} shrinking).
    Case evaluation fans across [pool] (default
    {!Leqa_util.Pool.get_default}) with cost-weighted chunks; shrinking
    then runs serially in case order, scoring its candidate batches on
    the same pool — the summary (rows, counters, reproducers) is
    identical at every pool width.  Failures are shrunk when [shrink]
    (default [true]) and written under [shrink_dir] when given (created
    if missing).  Counters: [diff.cases], [diff.failures],
    [diff.degraded], [diff.shrink.evaluations]. *)

val write_reproducer : dir:string -> Diff.case -> Diff.outcome -> string
(** Write the case as [<label>-<W>x<H>.tfc] under [dir] (created if
    missing) with the metadata header; returns the path.  Deterministic
    content: rewriting an unchanged reproducer is byte-stable.
    @raise Leqa_util.Error.Error ([Io_error]) when unwritable. *)

val replay : dir:string -> (Diff.case * string option) list
(** Parse every [*.tfc] reproducer under [dir] (sorted by filename) back
    into a case plus its recorded classification key.  A missing or
    malformed header falls back to {!sides_for} defaults.
    @raise Leqa_util.Error.Error ([Io_error] / [Parse_error]) on an
    unreadable directory or netlist. *)

(* QCheck property-based tests on the core data structures and the
   estimator's model invariants, registered as alcotest cases. *)

module Q = QCheck
module Rng = Leqa_util.Rng
module Heap = Leqa_util.Heap
module Binomial = Leqa_util.Binomial
module Mm1 = Leqa_queueing.Mm1
module Bounds = Leqa_tsp.Bounds
module Geometry = Leqa_fabric.Geometry
module Params = Leqa_fabric.Params
module Qodg = Leqa_qodg.Qodg
module Dag = Leqa_qodg.Dag
module Iig = Leqa_iig.Iig
module Coverage = Leqa_core.Coverage

let count = 200

(* heap: popping any pushed multiset returns it sorted *)
let prop_heap_sorts =
  Q.Test.make ~name:"heap drains in sorted order" ~count
    Q.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.add h ~priority:p p) priorities;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= prev && drain p
      in
      drain neg_infinity)

(* rng: int stays within any positive bound *)
let prop_rng_int_bound =
  Q.Test.make ~name:"rng int in [0,bound)" ~count
    Q.(pair small_int (int_bound 1000))
    (fun (seed, bound_raw) ->
      let bound = bound_raw + 1 in
      let rng = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng ~bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* binomial pmf: non-negative and bounded by 1 *)
let prop_binomial_pmf_range =
  Q.Test.make ~name:"binomial pmf in [0,1]" ~count
    Q.(triple (int_bound 200) (int_bound 200) (float_bound_inclusive 1.0))
    (fun (n, k, p) ->
      let v = Binomial.pmf ~n ~k ~p in
      v >= 0.0 && v <= 1.0 +. 1e-9)

(* Eq 8: congestion delay is monotone non-decreasing in q *)
let prop_congestion_monotone =
  Q.Test.make ~name:"Eq-8 monotone in q" ~count
    Q.(pair (int_range 1 10) (float_range 1.0 10_000.0))
    (fun (nc, d_uncong) ->
      let previous = ref 0.0 in
      let ok = ref true in
      for q = 0 to 50 do
        let d = Mm1.congestion_delay ~nc ~d_uncong ~q in
        if d +. 1e-9 < !previous then ok := false;
        previous := d
      done;
      !ok)

(* Eq 13-14: estimate always between its bounds *)
let prop_tsp_estimate_bracketed =
  Q.Test.make ~name:"Eq-15 estimate between Eq-13/14 bounds" ~count
    Q.(int_range 1 100_000)
    (fun n ->
      let lo = Bounds.tour_lower_bound ~n
      and mid = Bounds.tour_estimate ~n
      and hi = Bounds.tour_upper_bound ~n in
      lo <= mid && mid <= hi)

(* geometry: xy_route length equals manhattan distance *)
let coord_gen =
  Q.map
    (fun (x, y) -> Geometry.{ x = x + 1; y = y + 1 })
    Q.(pair (int_bound 30) (int_bound 30))

let prop_xy_route_length =
  Q.Test.make ~name:"xy route length = manhattan" ~count
    Q.(pair coord_gen coord_gen)
    (fun (src, dst) ->
      List.length (Geometry.xy_route ~src ~dst) = Geometry.manhattan src dst)

let prop_manhattan_triangle =
  Q.Test.make ~name:"manhattan triangle inequality" ~count
    Q.(triple coord_gen coord_gen coord_gen)
    (fun (a, b, c) ->
      Geometry.manhattan a c <= Geometry.manhattan a b + Geometry.manhattan b c)

(* random FT circuits: QODG is acyclic, with |V| = ops+2 and every op node
   reachable between start and finish *)
let ft_circuit_gen =
  Q.map
    (fun (seed, qubits_raw, gates) ->
      let qubits = qubits_raw + 2 in
      let rng = Rng.create ~seed in
      Leqa_benchmarks.Random_circuit.ft ~rng ~qubits ~gates
        ~cnot_fraction:0.5)
    Q.(triple small_int (int_bound 10) (int_bound 150))

let prop_qodg_well_formed =
  Q.Test.make ~name:"QODG acyclic with correct node count" ~count:100
    ft_circuit_gen
    (fun circ ->
      let qodg = Qodg.of_ft_circuit circ in
      Dag.is_acyclic (Qodg.dag qodg)
      && Qodg.num_nodes qodg = Leqa_circuit.Ft_circuit.num_gates circ + 2)

let prop_qodg_no_orphans =
  Q.Test.make ~name:"every op node has preds and succs" ~count:100
    ft_circuit_gen
    (fun circ ->
      let qodg = Qodg.of_ft_circuit circ in
      let dag = Qodg.dag qodg in
      List.for_all
        (fun node -> Dag.in_degree dag node > 0 && Dag.out_degree dag node > 0)
        (Qodg.op_nodes qodg))

(* IIG handshake lemma on random circuits *)
let prop_iig_handshake =
  Q.Test.make ~name:"IIG handshake lemma" ~count:100 ft_circuit_gen
    (fun circ ->
      let iig = Iig.of_ft_circuit circ in
      let sum = ref 0 in
      for i = 0 to Iig.num_qubits iig - 1 do
        sum := !sum + Iig.adjacent_weight_sum iig i
      done;
      !sum = 2 * Iig.total_weight iig)

(* coverage probabilities stay in (0,1] over random fabric/zone shapes *)
let prop_coverage_in_range =
  Q.Test.make ~name:"P_{x,y} in (0,1]" ~count
    Q.(pair (int_range 2 40) (int_range 2 40))
    (fun (width, height) ->
      let avg_area = float_of_int (min width height) in
      let grid = Coverage.probability_grid ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height in
      Array.for_all (fun p -> p > 0.0 && p <= 1.0 +. 1e-12) grid)

(* Eq 3 on random shapes: untruncated surfaces + uncovered = area *)
let prop_eq3_random_shapes =
  Q.Test.make ~name:"Eq-3 total surface" ~count:50
    Q.(triple (int_range 2 15) (int_range 2 15) (int_range 1 10))
    (fun (width, height, qubits) ->
      let avg_area = 4.0 in
      let surfaces =
        Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits
          ~terms:qubits
      in
      let total =
        Coverage.expected_uncovered ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits
        +. Array.fold_left ( +. ) 0.0 surfaces
      in
      abs_float (total -. float_of_int (width * height)) < 1e-6)

(* E[S_q] bounds on randomized shapes/topologies: every term is a surface,
   so it lies in [0, A]; any truncated partial sum stays below A; and the
   kernel guards never trip on well-formed inputs *)
let prop_surfaces_bounded =
  Q.Test.make ~name:"E[S_q] in [0, A], truncated sum <= A" ~count:100
    Q.(
      quad (int_range 2 25) (int_range 2 25) (int_range 1 40) (int_range 1 30)
      |> pair bool)
    (fun (torus, (width, height, qubits, terms)) ->
      let topology =
        if torus then Leqa_fabric.Params.Torus else Leqa_fabric.Params.Grid
      in
      let avg_area = 1.0 +. float_of_int ((width * height) mod 17) in
      let area = float_of_int (width * height) in
      let surfaces =
        Coverage.expected_surfaces ~topology ~avg_area ~width ~height ~qubits
          ~terms
      in
      (* [terms] is a minimum: the series self-extends (up to Q terms)
         when the truncated binomial tail is non-negligible *)
      Array.length surfaces >= min terms qubits
      && Array.length surfaces <= max 1 qubits
      && Array.for_all
           (fun s -> Float.is_finite s && s >= 0.0 && s <= area +. 1e-9)
           surfaces
      && Array.fold_left ( +. ) 0.0 surfaces <= area +. 1e-6)

(* estimator is deterministic and positive on random non-empty circuits *)
let prop_estimator_deterministic =
  Q.Test.make ~name:"estimator deterministic & positive" ~count:50
    ft_circuit_gen
    (fun circ ->
      Q.assume (Leqa_circuit.Ft_circuit.num_gates circ > 0);
      let qodg = Qodg.of_ft_circuit circ in
      let a = Leqa_core.Estimator.estimate ~params:Params.default qodg in
      let b = Leqa_core.Estimator.estimate ~params:Params.default qodg in
      a.Leqa_core.Estimator.latency_us = b.Leqa_core.Estimator.latency_us
      && a.Leqa_core.Estimator.latency_us > 0.0)

(* QSPR latency dominates the routing-free critical path *)
let prop_qspr_dominates_critical_path =
  Q.Test.make ~name:"QSPR >= routing-free critical path" ~count:25
    ft_circuit_gen
    (fun circ ->
      Q.assume (Leqa_circuit.Ft_circuit.num_gates circ > 0);
      let qodg = Qodg.of_ft_circuit circ in
      let cp =
        Leqa_qodg.Critical_path.compute qodg
          ~delay:(Params.gate_delay Params.default)
      in
      let r = Leqa_qspr.Qspr.run qodg in
      r.Leqa_qspr.Qspr.latency_us +. 1e-6
      >= cp.Leqa_qodg.Critical_path.length)

(* parser round-trip on random logical circuits *)
let logical_circuit_gen =
  Q.map
    (fun (seed, gates) ->
      let rng = Rng.create ~seed in
      Leqa_benchmarks.Random_circuit.logical ~rng ~qubits:6 ~gates)
    Q.(pair small_int (int_bound 60))

let prop_parser_roundtrip =
  Q.Test.make ~name:"parser round-trip" ~count:100 logical_circuit_gen
    (fun circ ->
      match Leqa_circuit.Parser.parse_string (Leqa_circuit.Parser.to_string circ) with
      | Error _ -> false
      | Ok reparsed ->
        Leqa_circuit.Circuit.num_gates reparsed
        = Leqa_circuit.Circuit.num_gates circ
        && Leqa_circuit.Parser.to_string reparsed
           = Leqa_circuit.Parser.to_string circ)

(* decomposition output contains only FT gates and preserves CNOT+T parity
   of wire usage: every produced gate is one of the 9 FT ops *)
let prop_decompose_only_ft =
  Q.Test.make ~name:"decomposition emits only FT gates" ~count:100
    logical_circuit_gen
    (fun circ ->
      let ft = Leqa_circuit.Decompose.to_ft circ in
      let ok = ref true in
      Leqa_circuit.Ft_circuit.iter
        (fun g ->
          match g with
          | Leqa_circuit.Ft_gate.Single _ | Leqa_circuit.Ft_gate.Cnot _ -> ()
          | exception _ -> ok := false)
        ft;
      !ok && Leqa_circuit.Ft_circuit.num_gates ft
             >= Leqa_circuit.Circuit.num_gates circ)

(* parser robustness: arbitrary byte soup must never raise — it parses or
   returns Error *)
let prop_parser_never_raises =
  Q.Test.make ~name:"parser never raises on garbage" ~count:500
    Q.(string_gen_of_size (Q.Gen.int_bound 200) Q.Gen.printable)
    (fun garbage ->
      match Leqa_circuit.Parser.parse_string garbage with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* optimizer safety: never grows a circuit, never changes the wire count *)
let prop_optimizer_shrinks =
  Q.Test.make ~name:"optimizer never grows circuits" ~count:100
    ft_circuit_gen
    (fun circ ->
      let simplified = Leqa_circuit.Optimize.simplify circ in
      Leqa_circuit.Ft_circuit.num_gates simplified
      <= Leqa_circuit.Ft_circuit.num_gates circ
      && Leqa_circuit.Ft_circuit.num_qubits simplified
         = Leqa_circuit.Ft_circuit.num_qubits circ)

(* torus coverage: uniform everywhere *)
let prop_torus_coverage_uniform =
  Q.Test.make ~name:"torus coverage is position-independent" ~count:100
    Q.(pair (int_range 3 30) (int_range 3 30))
    (fun (width, height) ->
      let avg_area = 4.0 in
      let grid =
        Coverage.probability_grid ~topology:Leqa_fabric.Params.Torus ~avg_area
          ~width ~height
      in
      Array.for_all (fun p -> abs_float (p -. grid.(0)) < 1e-12) grid)

(* schedule invariant: 0 <= asap <= alap for every op on random circuits *)
let prop_schedule_slack_invariant =
  Q.Test.make ~name:"ASAP <= ALAP everywhere" ~count:100 ft_circuit_gen
    (fun circ ->
      let qodg = Qodg.of_ft_circuit circ in
      let s =
        Leqa_qodg.Schedule.compute qodg
          ~delay:(Params.gate_delay Params.default)
      in
      List.for_all
        (fun node ->
          Leqa_qodg.Schedule.asap s node
          <= Leqa_qodg.Schedule.alap s node +. 1e-9)
        (Qodg.op_nodes qodg))

(* QODG round-trip: rebuilt circuit has identical gates in order *)
let prop_qodg_roundtrip =
  Q.Test.make ~name:"QODG <-> circuit round-trip" ~count:100 ft_circuit_gen
    (fun circ ->
      let rebuilt = Qodg.to_ft_circuit (Qodg.of_ft_circuit circ) in
      Leqa_circuit.Ft_circuit.num_gates rebuilt
      = Leqa_circuit.Ft_circuit.num_gates circ
      && begin
           let same = ref true in
           Leqa_circuit.Ft_circuit.iteri
             (fun i g ->
               if Leqa_circuit.Ft_circuit.gate circ i <> g then same := false)
             rebuilt;
           !same
         end)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_sorts;
      prop_rng_int_bound;
      prop_binomial_pmf_range;
      prop_congestion_monotone;
      prop_tsp_estimate_bracketed;
      prop_xy_route_length;
      prop_manhattan_triangle;
      prop_qodg_well_formed;
      prop_qodg_no_orphans;
      prop_iig_handshake;
      prop_coverage_in_range;
      prop_eq3_random_shapes;
      prop_surfaces_bounded;
      prop_estimator_deterministic;
      prop_qspr_dominates_critical_path;
      prop_parser_roundtrip;
      prop_decompose_only_ft;
      prop_parser_never_raises;
      prop_optimizer_shrinks;
      prop_torus_coverage_uniform;
      prop_schedule_slack_invariant;
      prop_qodg_roundtrip;
    ]

lib/fabric/geometry.ml: Format List

test/test_compose.ml: Alcotest Compose Ft_circuit Ft_gate Leqa_benchmarks Leqa_circuit Leqa_qodg Leqa_qspr Leqa_util List Statevector

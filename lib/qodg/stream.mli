(** Streaming critical path over a gate sequence.

    Folds the routing-augmented longest path of Eq (1) — the quantity
    {!Critical_path.compute} extracts from a materialized QODG — over
    gates as they arrive, in bounded memory: the state is a per-wire
    frontier of live records, never the circuit or the DAG.  Feeding the
    gates of a circuit in program order yields a result whose [length]
    and [counts] are bit-for-bit identical to the materialized path
    (same float accumulation order, same descending-node-id
    tie-breaking); the [path] node list, which a frontier cannot
    reconstruct, is left empty. *)

type t

val create : delay:(Leqa_circuit.Ft_gate.t -> float) -> t
(** Fresh frontier; [delay] is the routing-augmented node weight, as
    passed to {!Critical_path.compute}. *)

val feed : t -> Leqa_circuit.Ft_gate.t -> unit
(** Fold one gate, in program order. *)

val gate_count : t -> int
(** Gates fed so far. *)

val peak_live : t -> int
(** High-water mark of live frontier records — the streamed equivalent
    of "resident gates", bounded by the wire count plus still-referenced
    shared history, not by the gate count.  Reported by the estimator as
    the [qodg.stream.peak_gates] gauge. *)

val result : t -> num_qubits:int -> Critical_path.result
(** The critical path of the gates fed so far, over a circuit of
    [num_qubits] wires (wires never touched by a gate sit at the start
    node, exactly as in the materialized QODG).  [result.path] is [[]].  *)

type t = { truncation_terms : int }

let default = { truncation_terms = 20 }

let exact ~qubits = { truncation_terms = max qubits 1 }

let validate t =
  if t.truncation_terms <= 0 then
    Error
      (Leqa_util.Error.Config_error
         (Printf.sprintf "truncation_terms must be positive (got %d)"
            t.truncation_terms))
  else Ok ()

open Leqa_util

let str = Alcotest.(check string)

let test_scalars () =
  str "null" "null" (Json.to_string Json.Null);
  str "true" "true" (Json.to_string (Json.Bool true));
  str "int" "42" (Json.to_string (Json.Int 42));
  str "negative" "-7" (Json.to_string (Json.Int (-7)));
  str "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_float_rendering () =
  str "half" "0.5" (Json.to_string (Json.Float 0.5));
  str "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  str "inf is null" "null" (Json.to_string (Json.Float Float.infinity));
  (* round-trip precision *)
  let v = 0.1 +. 0.2 in
  Alcotest.(check (float 0.0)) "17 digits round-trip" v
    (float_of_string (Json.to_string (Json.Float v)))

let test_escaping () =
  str "quotes" "\"a\\\"b\"" (Json.to_string (Json.String "a\"b"));
  str "backslash" "\"a\\\\b\"" (Json.to_string (Json.String "a\\b"));
  str "newline" "\"a\\nb\"" (Json.to_string (Json.String "a\nb"));
  str "control char" "\"\\u0001\"" (Json.to_string (Json.String "\001"))

let test_structures () =
  str "list" "[1,2,3]"
    (Json.to_string (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]));
  str "empty list" "[]" (Json.to_string (Json.List []));
  str "object" "{\"a\":1,\"b\":[true]}"
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]));
  str "nested" "{\"rows\":[{\"x\":null}]}"
    (Json.to_string
       (Json.Obj [ ("rows", Json.List [ Json.Obj [ ("x", Json.Null) ] ]) ]))

let test_write_file () =
  let path = Filename.temp_file "leqa_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.write_file path (Json.Obj [ ("ok", Json.Bool true) ]);
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      str "file contents" "{\"ok\":true}" line)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "float rendering" `Quick test_float_rendering;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "structures" `Quick test_structures;
    Alcotest.test_case "write to file" `Quick test_write_file;
  ]

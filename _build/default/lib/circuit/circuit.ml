type t = {
  mutable wires : int;
  mutable data : Gate.t array;
  mutable size : int;
}

let create ?(num_qubits = 0) () =
  if num_qubits < 0 then invalid_arg "Circuit.create: negative wire count";
  { wires = num_qubits; data = [||]; size = 0 }

let grow c =
  let capacity = Array.length c.data in
  if c.size = capacity then begin
    let filler = c.data.(0) in
    let fresh = Array.make (max 16 (2 * capacity)) filler in
    Array.blit c.data 0 fresh 0 c.size;
    c.data <- fresh
  end

let add c g =
  (match Gate.validate g with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Circuit.add: " ^ msg));
  if Array.length c.data = 0 then c.data <- Array.make 16 g else grow c;
  c.data.(c.size) <- g;
  c.size <- c.size + 1;
  c.wires <- max c.wires (Gate.max_qubit g + 1)

let add_all c gs = List.iter (add c) gs

let num_qubits c = c.wires

let num_gates c = c.size

let gate c i =
  if i < 0 || i >= c.size then invalid_arg "Circuit.gate: index out of range";
  c.data.(i)

let gates c = Array.sub c.data 0 c.size

let iter f c =
  for i = 0 to c.size - 1 do
    f c.data.(i)
  done

let iteri f c =
  for i = 0 to c.size - 1 do
    f i c.data.(i)
  done

let fold f init c =
  let acc = ref init in
  iter (fun g -> acc := f !acc g) c;
  !acc

let of_gates ?num_qubits gs =
  let c = create ?num_qubits () in
  add_all c gs;
  c

type counts = {
  singles : int;
  cnots : int;
  toffolis : int;
  fredkins : int;
  mcts : int;
  mcfs : int;
}

let counts c =
  fold
    (fun acc g ->
      match g with
      | Gate.Single _ -> { acc with singles = acc.singles + 1 }
      | Gate.Cnot _ -> { acc with cnots = acc.cnots + 1 }
      | Gate.Toffoli _ -> { acc with toffolis = acc.toffolis + 1 }
      | Gate.Fredkin _ -> { acc with fredkins = acc.fredkins + 1 }
      | Gate.Mct _ -> { acc with mcts = acc.mcts + 1 }
      | Gate.Mcf _ -> { acc with mcfs = acc.mcfs + 1 })
    { singles = 0; cnots = 0; toffolis = 0; fredkins = 0; mcts = 0; mcfs = 0 }
    c

let two_qubit_pairs c =
  List.rev
    (fold
       (fun acc g ->
         match g with
         | Gate.Cnot { control; target } -> (control, target) :: acc
         | Gate.Single _ | Gate.Toffoli _ | Gate.Fredkin _ | Gate.Mct _
         | Gate.Mcf _ ->
           acc)
       [] c)

let pp_summary ppf c =
  let k = counts c in
  Format.fprintf ppf
    "circuit: %d qubits, %d gates (1q=%d cnot=%d tof=%d fre=%d mct=%d mcf=%d)"
    (num_qubits c) (num_gates c) k.singles k.cnots k.toffolis k.fredkins
    k.mcts k.mcfs

(** Initial placement of logical qubits onto the ULB grid.

    The detailed mapper needs a starting position per qubit; qubits then
    move dynamically as the schedule executes (Section 3.1 notes the
    "dynamically moveable cells" difference from VLSI placement). *)

type strategy =
  | Spread  (** deterministic even spacing across the fabric (default) *)
  | Row_major  (** qubit i at the i-th ULB in row-major order *)
  | Random of int  (** uniform random distinct ULBs from the given seed *)
  | Center_out  (** ULBs sorted by distance from the fabric centre *)
  | Clustered of Leqa_iig.Iig.t
      (** interaction-aware: qubits ordered by a weight-greedy BFS over
          the IIG land on centre-out tiles, so heavy interaction pairs sit
          close.  LEQA's Eq-5 model assumes *random* zone placement; this
          strategy probes that assumption (see the placement ablation). *)

val place :
  strategy ->
  num_qubits:int ->
  width:int ->
  height:int ->
  Leqa_fabric.Geometry.coord array
(** Positions for qubits 0..n-1.  ULBs are reused (wrap-around) when the
    qubit count exceeds the fabric area.
    @raise Invalid_argument on a non-positive fabric. *)

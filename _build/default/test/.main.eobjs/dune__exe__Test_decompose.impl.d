test/test_decompose.ml: Alcotest Array Circuit Decompose Float Ft_circuit Ft_gate Gate Leqa_circuit List Printf

open Leqa_circuit

let ft gates = Ft_circuit.of_gates gates

let test_append () =
  let a = ft Ft_gate.[ Single (H, 0) ] in
  let b = ft Ft_gate.[ Cnot { control = 0; target = 3 } ] in
  let c = Compose.append a b in
  Alcotest.(check int) "gates" 2 (Ft_circuit.num_gates c);
  Alcotest.(check int) "wires" 4 (Ft_circuit.num_qubits c)

let test_repeat () =
  let a = ft Ft_gate.[ Single (T, 0); Single (H, 1) ] in
  let r = Compose.repeat ~times:3 a in
  Alcotest.(check int) "3x gates" 6 (Ft_circuit.num_gates r);
  let zero = Compose.repeat ~times:0 a in
  Alcotest.(check int) "0x is empty" 0 (Ft_circuit.num_gates zero);
  Alcotest.(check int) "0x keeps wires" 2 (Ft_circuit.num_qubits zero);
  Alcotest.check_raises "negative" (Invalid_argument "Compose.repeat: negative times")
    (fun () -> ignore (Compose.repeat ~times:(-1) a))

let test_map_wires () =
  let a = ft Ft_gate.[ Cnot { control = 0; target = 1 } ] in
  let shifted = Compose.map_wires ~f:(fun q -> q + 5) a in
  (match Ft_circuit.gate shifted 0 with
  | Ft_gate.Cnot { control = 5; target = 6 } -> ()
  | g -> Alcotest.failf "unexpected %s" (Ft_gate.to_string g));
  Alcotest.check_raises "collision"
    (Invalid_argument "Compose.map_wires: operands collide") (fun () ->
      ignore (Compose.map_wires ~f:(fun _ -> 0) a));
  Alcotest.check_raises "negative"
    (Invalid_argument "Compose.map_wires: negative wire") (fun () ->
      ignore (Compose.map_wires ~f:(fun q -> q - 1) a))

let test_parallel () =
  let a = ft Ft_gate.[ Single (H, 0); Single (H, 1) ] in
  let b = ft Ft_gate.[ Cnot { control = 0; target = 1 } ] in
  let c = Compose.parallel a b in
  Alcotest.(check int) "wires" 4 (Ft_circuit.num_qubits c);
  (match Ft_circuit.gate c 2 with
  | Ft_gate.Cnot { control = 2; target = 3 } -> ()
  | g -> Alcotest.failf "b not shifted: %s" (Ft_gate.to_string g))

let test_inverse_undoes () =
  (* C · C⁻¹ ≡ identity, checked as a unitary on random circuits *)
  let rng = Leqa_util.Rng.create ~seed:41 in
  for _ = 1 to 10 do
    let circ =
      Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:4 ~gates:40
        ~cnot_fraction:0.4
    in
    let sandwich = Compose.append circ (Compose.inverse circ) in
    let identity = Ft_circuit.create ~num_qubits:4 () in
    if not (Statevector.equivalent_on_basis ~num_qubits:4 sandwich identity)
    then Alcotest.fail "C · C^-1 is not the identity"
  done

let test_invert_gate_involutive () =
  List.iter
    (fun g ->
      Alcotest.(check string) "double inversion"
        (Ft_gate.to_string g)
        (Ft_gate.to_string (Compose.invert_gate (Compose.invert_gate g))))
    Ft_gate.
      [
        Single (T, 0); Single (Tdg, 1); Single (S, 2); Single (Sdg, 0);
        Single (H, 0); Single (X, 0); Cnot { control = 0; target = 1 };
      ]

let test_parallel_latency_is_max () =
  (* two disjoint programs in parallel: QSPR latency = the slower one *)
  let a = ft Ft_gate.[ Single (T, 0); Single (T, 0) ] in
  let b = ft Ft_gate.[ Single (H, 0) ] in
  let combined = Compose.parallel a b in
  let latency circ =
    (Leqa_qspr.Qspr.run (Leqa_qodg.Qodg.of_ft_circuit circ)).Leqa_qspr.Qspr
      .latency_us
  in
  Alcotest.(check (float 1e-6)) "max rule" (latency a) (latency combined)

let suite =
  [
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "repeat" `Quick test_repeat;
    Alcotest.test_case "map_wires" `Quick test_map_wires;
    Alcotest.test_case "parallel" `Quick test_parallel;
    Alcotest.test_case "inverse undoes" `Quick test_inverse_undoes;
    Alcotest.test_case "invert_gate involutive" `Quick test_invert_gate_involutive;
    Alcotest.test_case "parallel latency = max" `Quick test_parallel_latency_is_max;
  ]

open Leqa_core

let test_monte_carlo_matches_eq4 () =
  (* the analytic E[S_q] of Eq 4 must agree with direct simulation of the
     very random process it models *)
  let width = 20 and height = 20 and qubits = 8 and avg_area = 9.0 in
  let expected =
    Coverage.expected_surfaces ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits ~terms:qubits
  in
  let rng = Leqa_util.Rng.create ~seed:404 in
  let measured =
    Validation.measure ~rng ~avg_area ~width ~height ~qubits ~trials:3000
      ~qmax:qubits ()
  in
  let deviation =
    Validation.max_abs_deviation ~expected
      ~empirical:measured.Validation.empirical_surfaces
  in
  (* E[S_1] is ~60 ULBs here; demand agreement within 1.5 ULBs *)
  if deviation > 1.5 then
    Alcotest.failf "Eq-4 deviates from Monte-Carlo by %.2f ULBs" deviation

let test_uncovered_matches_eq4 () =
  let width = 15 and height = 15 and qubits = 5 and avg_area = 16.0 in
  let expected =
    Coverage.expected_uncovered ~topology:Leqa_fabric.Params.Grid ~avg_area ~width ~height ~qubits
  in
  let rng = Leqa_util.Rng.create ~seed:405 in
  let measured =
    Validation.measure ~rng ~avg_area ~width ~height ~qubits ~trials:3000
      ~qmax:qubits ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "uncovered %.1f vs %.1f" expected
       measured.Validation.empirical_uncovered)
    true
    (abs_float (expected -. measured.Validation.empirical_uncovered) < 2.0)

let test_total_surface_conserved () =
  (* every trial covers exactly A ULBs across q = 0..Q *)
  let width = 10 and height = 10 and qubits = 4 in
  let rng = Leqa_util.Rng.create ~seed:7 in
  let measured =
    Validation.measure ~rng ~avg_area:4.0 ~width ~height ~qubits ~trials:500
      ~qmax:qubits ()
  in
  let total =
    measured.Validation.empirical_uncovered
    +. Array.fold_left ( +. ) 0.0 measured.Validation.empirical_surfaces
  in
  Alcotest.(check (float 1e-6)) "sums to A" 100.0 total

let test_input_validation () =
  let rng = Leqa_util.Rng.create ~seed:1 in
  Alcotest.check_raises "trials" (Invalid_argument "Validation.measure: trials <= 0")
    (fun () ->
      ignore
        (Validation.measure ~rng ~avg_area:4.0 ~width:5 ~height:5 ~qubits:2
           ~trials:0 ~qmax:2 ()))

let test_anchor_guard () =
  (* a zone wider than the fabric leaves no anchor position: must be a
     structured Fabric_error, not Rng.int blowing up on bound <= 0 *)
  let rng = Leqa_util.Rng.create ~seed:2 in
  match
    Validation.measure ~side:6 ~rng ~avg_area:4.0 ~width:5 ~height:5 ~qubits:2
      ~trials:10 ~qmax:2 ()
  with
  | _ -> Alcotest.fail "expected a Fabric_error"
  | exception Leqa_util.Error.Error (Leqa_util.Error.Fabric_error _) -> ()
  | exception e ->
    Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_deadline_stops_trials () =
  let rng = Leqa_util.Rng.create ~seed:3 in
  let d = Leqa_util.Pool.Deadline.after ~seconds:1e-9 in
  while not (Leqa_util.Pool.Deadline.expired d) do
    ignore (Sys.opaque_identity ())
  done;
  match
    Validation.measure ~deadline:d ~rng ~avg_area:4.0 ~width:20 ~height:20
      ~qubits:8 ~trials:1_000_000 ~qmax:8 ()
  with
  | _ -> Alcotest.fail "expected Timed_out"
  | exception Leqa_util.Error.Error (Leqa_util.Error.Timed_out { site; _ }) ->
    Alcotest.(check string) "site" "mc.trial" site

let test_max_abs_deviation () =
  Alcotest.(check (float 1e-9)) "deviation" 3.0
    (Validation.max_abs_deviation ~expected:[| 1.0; 5.0 |]
       ~empirical:[| 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Validation.max_abs_deviation ~expected:[||] ~empirical:[| 1.0 |])

let suite =
  [
    Alcotest.test_case "Eq-4 vs Monte-Carlo" `Slow test_monte_carlo_matches_eq4;
    Alcotest.test_case "E[S_0] vs Monte-Carlo" `Slow test_uncovered_matches_eq4;
    Alcotest.test_case "surface conservation" `Quick test_total_surface_conserved;
    Alcotest.test_case "input validation" `Quick test_input_validation;
    Alcotest.test_case "anchor guard is structured" `Quick test_anchor_guard;
    Alcotest.test_case "deadline stops trials" `Quick test_deadline_stops_trials;
    Alcotest.test_case "max_abs_deviation" `Quick test_max_abs_deviation;
  ]

(** Dense state-vector simulation of FT circuits.

    Exponential in qubit count — this is a *verification* tool for small
    circuits (decomposition identities, optimizer soundness), not an
    execution engine; the paper is explicit that tracing operations, not
    simulating amplitudes, is all a latency tool can afford.  Capped at
    {!max_qubits} qubits. *)

type t

val max_qubits : int
(** 20 (16 MB of amplitudes). *)

val create : num_qubits:int -> basis:int -> t
(** |basis⟩ on [num_qubits] wires.
    @raise Invalid_argument if out of range. *)

val num_qubits : t -> int

val apply : t -> Ft_gate.t -> unit
(** Apply one FT gate in place. *)

val run : t -> Ft_circuit.t -> unit
(** Apply a whole circuit. *)

val amplitude : t -> int -> float * float
(** (re, im) of a basis state. *)

val probability : t -> int -> float
(** |amplitude|². *)

val norm : t -> float
(** Σ probabilities — 1.0 up to rounding (unitarity check). *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|² of two states on the same wire count.
    @raise Invalid_argument on mismatched sizes. *)

val measure_basis : t -> int option
(** If the state is (numerically) a computational basis state, its index. *)

val equivalent_on_basis :
  num_qubits:int -> Ft_circuit.t -> Ft_circuit.t -> bool
(** True iff the two circuits act identically (up to global phase) on
    every computational basis input — an exact unitary-equivalence check
    for [num_qubits ≤ max_qubits] circuits whose outputs are compared via
    fidelity. *)

test/test_stats.ml: Alcotest Leqa_util List Stats

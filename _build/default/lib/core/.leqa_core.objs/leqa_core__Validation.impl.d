lib/core/validation.ml: Array Coverage Float Leqa_util

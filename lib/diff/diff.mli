(** Differential testing of the analytic estimator against the QSPR
    reference mapper (DESIGN.md §10).

    A {!case} pins down one comparison: a logical circuit, a fabric, and
    a relative-error budget.  {!run_case} runs both paths on the same
    QODG — `Estimator.estimate` with the calibrated parameters and
    `Qspr.run` with the paper's defaults, the same convention as
    [leqa compare] — and classifies the disagreement.  Failing
    classifications feed {!Shrink.shrink}. *)

type case = {
  label : string;  (** benchmark name or generator tag, for reports *)
  circuit : Leqa_circuit.Circuit.t;
  width : int;
  height : int;
  budget : float;  (** max tolerated relative error, e.g. 0.15 *)
}

type classification =
  | Within_budget
  | Budget_exceeded  (** both paths finished; error above [budget] *)
  | Non_finite  (** NaN/Inf latency or infinite relative error *)
  | Estimator_error of string
      (** the analytic path raised; payload is the stable error kind
          (["fault-injected"], ["numeric-error"], …) or a crash tag *)
  | Qspr_error of string  (** the reference path raised (not a timeout) *)
  | Degraded
      (** the simulation hit the deadline — not comparable, not a
          failure: the analytic half completed *)

type outcome = {
  classification : classification;
  rel_error : float option;  (** present iff finite *)
  estimated_us : float option;
  simulated_us : float option;
}

val failed : classification -> bool
(** [true] for the classifications the harness must shrink and report:
    budget excess, non-finite values, and crashes in either path. *)

val classification_key : classification -> string
(** Stable machine-readable tag (["budget-exceeded"],
    ["estimator-error:fault-injected"], …).  Shrinking preserves this
    key: a candidate only replaces the original if it fails the same
    way. *)

val run_case :
  ?deadline_s:float ->
  ?telemetry:Leqa_util.Telemetry.t ->
  ?conventions:Leqa_core.Calib_tables.conventions ->
  case ->
  outcome
(** Decompose, build the QODG once, run both paths, classify.  Never
    raises on a failing case — errors from either path are captured in
    the classification.  [deadline_s] bounds only the simulation half
    (timeout ⇒ [Degraded]).  [conventions] (default [Fitted]) picks the
    estimator's parameter resolution; QSPR always runs with the paper's
    default [v].  Wraps the work in a ["diff.case"] span. *)

lib/qodg/schedule.ml: Array Dag Float Leqa_circuit List Qodg

let node_label qodg node =
  match Qodg.kind qodg node with
  | Qodg.Start -> "start"
  | Qodg.Finish -> "end"
  | Qodg.Op g -> Leqa_circuit.Ft_gate.to_string g

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | _ -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let qodg_to_dot ?(highlight = []) qodg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph qodg {\n  rankdir=TB;\n";
  let emit_node node =
    let shape =
      match Qodg.kind qodg node with
      | Qodg.Start | Qodg.Finish -> "box"
      | Qodg.Op _ -> "ellipse"
    in
    let style = if List.mem node highlight then ", style=bold" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" node
         (escape (node_label qodg node))
         shape style)
  in
  for node = 0 to Qodg.num_nodes qodg - 1 do
    emit_node node
  done;
  let dag = Qodg.dag qodg in
  for node = 0 to Qodg.num_nodes qodg - 1 do
    List.iter
      (fun succ ->
        let bold =
          if List.mem node highlight && List.mem succ highlight then
            " [style=bold]"
          else ""
        in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" node succ bold))
      (List.sort compare (Dag.succs dag node))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_qodg ?highlight path qodg =
  let oc = open_out path in
  output_string oc (qodg_to_dot ?highlight qodg);
  close_out oc

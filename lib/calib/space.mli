(** The typed parameter space of the latency model (DESIGN.md §13).

    Four free parameters — the channel speed [v], the hop time
    [T_move], the one-qubit gate multiplier [lg_mult] and the
    congestion slope [cong_slope] — with explicit bounds and two named
    priors.  The fitting loop treats a {!point} as the unit of search;
    {!place} projects it onto a fabric's full
    {!Leqa_fabric.Params.t}. *)

type point = {
  v : float;
  t_move : float;
  lg_mult : float;
  cong_slope : float;
}

type axis = V | T_move | Lg_mult | Cong_slope

val axes : axis list
(** Fixed descent order: [v], [t_move], [lg_mult], [cong_slope]. *)

val axis_name : axis -> string

val bounds : axis -> float * float
(** [(lo, hi)], both positive; the line search is log-scaled over this
    bracket. *)

val get : point -> axis -> float
val set : point -> axis -> float -> point

val clamp : axis -> float -> float
(** Clip into the axis bounds. *)

val clamp_point : point -> point

val prior : point
(** The one-shot global calibration (v = 0.005) — the descent's main
    starting point. *)

val paper_default : point
(** The paper's Table 1 values (v = 0.001). *)

val sample : Leqa_util.Rng.t -> point
(** Log-uniform draw over the bounds — the seeded third start. *)

val place : point -> Leqa_fabric.Params.t -> Leqa_fabric.Params.t
(** Overwrite the four free parameters of a params record, keeping
    fabric dimensions, [nc], gate delays and topology. *)

val of_params : Leqa_fabric.Params.t -> point

val equal : point -> point -> bool
(** Bitwise-for-floats equality (no tolerance): used to skip re-scoring
    a candidate identical to the incumbent. *)

(* The whole stack, bottom to top.

   1. The ULB fabric designer prices every fault-tolerant operation from
      native ion-trap instructions and the Steane [[7,1,3]] code — the tool
      the paper says produces its Table 1 inputs.
   2. LEQA estimates a program's latency on the designed fabric.
   3. The QECC selection loop uses those estimates to find the cheapest
      concatenation level whose error budget the program fits — the
      "complex inter-dependency between the quantum algorithm and its
      latency ... and the QECC used" from the paper's introduction.

   Run with: dune exec examples/full_stack.exe *)

module Designer = Leqa_ulb.Designer
module Native = Leqa_ulb.Native
module Code = Leqa_qecc.Code
module Selection = Leqa_qecc.Selection
module Table = Leqa_util.Table

let () =
  (* 1. design the fabric *)
  let design = Designer.design () in
  Printf.printf "ULB fabric designer (native ion-trap timings, %d EC rounds):\n\n" 3;
  let table =
    Table.create
      ~columns:
        [
          ("FT op", Table.Left);
          ("gate phase (us)", Table.Right);
          ("EC phase (us)", Table.Right);
          ("total (us)", Table.Right);
          ("Table 1 (us)", Table.Right);
        ]
  in
  let published = [ 5440.0; 10940.0; 5240.0; 5240.0; 4930.0 ] in
  List.iter2
    (fun (name, gate, ec) paper ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%.0f" gate;
          Printf.sprintf "%.0f" ec;
          Printf.sprintf "%.0f" (gate +. ec);
          Printf.sprintf "%.0f" paper;
        ])
    (Designer.report design) published;
  Table.print table;
  Printf.printf "t_move = %.0f us (Table 1: 100)\n\n" design.Designer.t_move;

  (* 2. estimate a program on the designed fabric *)
  let params =
    Designer.to_params ~width:60 ~height:60 ~nc:5 ~v:0.005 ()
  in
  let circ = Leqa_benchmarks.Grover.circuit ~iterations:4 ~n:10 ~marked:777 () in
  let ft = Leqa_circuit.Decompose.to_ft circ in
  let qodg = Leqa_qodg.Qodg.of_ft_circuit ft in
  Format.printf "Workload: 10-bit Grover search, 4 iterations — %a@.@."
    Leqa_circuit.Ft_circuit.pp_summary ft;

  (* 3. close the QECC loop *)
  let requirement = Selection.default_requirement in
  let candidates, chosen =
    Selection.select ~params ~requirement ~per_level_delay:20.0 qodg
  in
  let table =
    Table.create
      ~columns:
        [
          ("code", Table.Left);
          ("latency (s)", Table.Right);
          ("p_fail", Table.Right);
          ("feasible", Table.Left);
        ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          Code.name c.Selection.code;
          Printf.sprintf "%.4f" c.Selection.latency_s;
          Printf.sprintf "%.2e" c.Selection.failure_probability;
          (if c.Selection.feasible then "yes" else "no");
        ])
    candidates;
  Table.print table;
  match chosen with
  | Some c ->
    Printf.printf
      "\nchosen: %s — the cheapest code whose error budget the program\n\
       fits, found with %d LEQA calls and zero detailed mappings.\n"
      (Code.name c.Selection.code)
      (List.length candidates)
  | None ->
    Printf.printf "\nno feasible code up to 4 levels — tighten the workload.\n"

module Ft_gate = Leqa_circuit.Ft_gate

type topology = Grid | Torus

type t = {
  d_h : float;
  d_t : float;
  d_s : float;
  d_pauli : float;
  d_cnot : float;
  nc : int;
  v : float;
  width : int;
  height : int;
  t_move : float;
  lg_mult : float;
  cong_slope : float;
  topology : topology;
}

let default =
  {
    d_h = 5440.0;
    d_t = 10940.0;
    d_s = 5240.0;
    d_pauli = 5240.0;
    d_cnot = 4930.0;
    nc = 5;
    v = 0.001;
    width = 60;
    height = 60;
    t_move = 100.0;
    lg_mult = 1.0;
    cong_slope = 1.0;
    topology = Grid;
  }

let calibrated = { default with v = 0.005 }

let area p = p.width * p.height

let single_delay p = function
  | Ft_gate.H -> p.d_h
  | Ft_gate.T | Ft_gate.Tdg -> p.d_t
  | Ft_gate.S | Ft_gate.Sdg -> p.d_s
  | Ft_gate.X | Ft_gate.Y | Ft_gate.Z -> p.d_pauli

let gate_delay p = function
  | Ft_gate.Cnot _ -> p.d_cnot
  | Ft_gate.Single (k, _) -> single_delay p k

(* the fitted multiplier generalizes the paper's empirical L_g = 2·T_move;
   at the default 1.0 the product is exactly the paper's value (bitwise:
   1.0 *. x = x for finite x) *)
let l_single_avg p = p.lg_mult *. (2.0 *. p.t_move)

let with_fabric p ~width ~height =
  if width <= 0 || height <= 0 then
    invalid_arg "Params.with_fabric: non-positive dimension";
  { p with width; height }

let scale_qecc p ~factor =
  if factor <= 0.0 then invalid_arg "Params.scale_qecc: non-positive factor";
  {
    p with
    d_h = p.d_h *. factor;
    d_t = p.d_t *. factor;
    d_s = p.d_s *. factor;
    d_pauli = p.d_pauli *. factor;
    d_cnot = p.d_cnot *. factor;
    t_move = p.t_move *. factor;
  }

let validate p =
  let fabric_error msg = Error (Leqa_util.Error.Fabric_error msg) in
  (* delays and speeds must be positive *and* finite: a NaN/Inf parameter
     would otherwise sail through every kernel guard as a "computed" value *)
  let positive name x =
    if Float.is_finite x && x > 0.0 then Ok ()
    else fabric_error (Printf.sprintf "%s must be positive and finite (got %g)" name x)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  positive "d_h" p.d_h >>= fun () ->
  positive "d_t" p.d_t >>= fun () ->
  positive "d_s" p.d_s >>= fun () ->
  positive "d_pauli" p.d_pauli >>= fun () ->
  positive "d_cnot" p.d_cnot >>= fun () ->
  positive "v" p.v >>= fun () ->
  positive "t_move" p.t_move >>= fun () ->
  positive "lg_mult" p.lg_mult >>= fun () ->
  positive "cong_slope" p.cong_slope >>= fun () ->
  if p.nc <= 0 then fabric_error "nc must be positive"
  else if p.width <= 0 || p.height <= 0 then
    fabric_error
      (Printf.sprintf "fabric must be non-empty (got %dx%d)" p.width p.height)
  else Ok ()

let pp ppf p =
  Format.fprintf ppf
    "@[<v>TQA parameters:@,\
     d_H      = %.0f us@,\
     d_T/T+   = %.0f us@,\
     d_S      = %.0f us@,\
     d_X/Y/Z  = %.0f us@,\
     d_CNOT   = %.0f us@,\
     N_c      = %d@,\
     v        = %g ULB/us@,\
     fabric   = %dx%d (A = %d)@,\
     T_move   = %.0f us@,\
     L_g mult = %g@,\
     cong. slope = %g@,\
     topology = %s@]"
    p.d_h p.d_t p.d_s p.d_pauli p.d_cnot p.nc p.v p.width p.height (area p)
    p.t_move p.lg_mult p.cong_slope
    (match p.topology with Grid -> "grid" | Torus -> "torus")

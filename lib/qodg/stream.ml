module Ft_gate = Leqa_circuit.Ft_gate

(* Streaming critical path: Eq-1's longest-path inputs folded over gates
   in program order, without materializing the circuit, the DAG or the
   per-node dist/parent arrays.

   The materialized path (Qodg.of_ft_circuit + Critical_path.compute)
   resolves ties by scanning each node's predecessors in descending
   node-id order with a strict > test, so among equal-dist predecessors
   the highest node id wins.  The per-wire frontier below replicates
   that exactly — max dist first, then max node id — which is what makes
   the streamed result bit-for-bit identical to the materialized one.

   Memory: one [entry] per *live* frontier record.  A record dies as
   soon as every wire that pointed at it has been overwritten by later
   gates, so the live count is bounded by the wire count (plus shared
   history that multiple wires still reference), never by the gate
   count; [peak_live] reports the high-water mark for the
   qodg.stream.peak_gates gauge. *)

type entry = {
  dist : float;  (* longest-path distance through this gate, node weight included *)
  node : int;  (* QODG node id: gate i (0-based) is node i + 1 *)
  cnots : int;  (* critical-path tallies accumulated along the best chain *)
  singles : int array;
  mutable rc : int;  (* wire slots currently pointing here *)
}

type t = {
  delay : Ft_gate.t -> float;
  mutable frontier : entry option array;  (* None = the start node *)
  mutable gates : int;
  mutable live : int;
  mutable peak : int;
}

let n_single_kinds = List.length Ft_gate.all_single_kinds

let create ~delay =
  { delay; frontier = Array.make 16 None; gates = 0; live = 0; peak = 0 }

let ensure t w =
  let n = Array.length t.frontier in
  if w >= n then begin
    let fresh = Array.make (max (w + 1) (2 * n)) None in
    Array.blit t.frontier 0 fresh 0 n;
    t.frontier <- fresh
  end

let dist_of = function None -> 0.0 | Some e -> e.dist
let node_of = function None -> 0 | Some e -> e.node

(* lexicographic (dist, node) max — the materialized tie-break *)
let consider best_d best_n best_e e =
  let d = dist_of e and n = node_of e in
  if d > !best_d || (d = !best_d && n > !best_n) then begin
    best_d := d;
    best_n := n;
    best_e := e
  end

let base_counts = function
  | None -> (0, Array.make n_single_kinds 0)
  | Some e -> (e.cnots, Array.copy e.singles)

let feed t g =
  let wires = Ft_gate.qubits g in
  List.iter (ensure t) wires;
  let best_d = ref neg_infinity and best_n = ref (-1) in
  let best_e = ref None in
  List.iter (fun w -> consider best_d best_n best_e t.frontier.(w)) wires;
  t.gates <- t.gates + 1;
  let cnots, singles = base_counts !best_e in
  let cnots =
    match g with
    | Ft_gate.Cnot _ -> cnots + 1
    | Ft_gate.Single (k, _) ->
      let i = Ft_gate.single_kind_index k in
      singles.(i) <- singles.(i) + 1;
      cnots
  in
  let entry =
    {
      dist = !best_d +. t.delay g;
      node = t.gates;
      cnots;
      singles;
      rc = List.length wires;
    }
  in
  List.iter
    (fun w ->
      (match t.frontier.(w) with
      | Some old ->
        old.rc <- old.rc - 1;
        if old.rc = 0 then t.live <- t.live - 1
      | None -> ());
      t.frontier.(w) <- Some entry)
    wires;
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live

let gate_count t = t.gates
let peak_live t = t.peak

(* ---- checkpoints -------------------------------------------------- *)

(* A checkpoint is the frontier after the first [ck_gates] gates: an
   O(wires) copy of the slot array sharing the (immutable-where-it-
   matters) entries.  Restoring and re-feeding the identical gate
   sequence reproduces the exact dist/node/counts values the original
   fold would have computed — [feed] never mutates an existing entry's
   [dist], [node], [cnots] or [singles], only allocates fresh ones — so
   a fold restarted from a checkpoint is bit-identical to a fold from
   gate 0.  The [rc]/live/peak accounting is NOT restored (replays
   decrement shared [rc] fields again), so [peak_live] of a restored
   fold is meaningless; delta consumers read [result] only. *)

type checkpoint = { ck_frontier : entry option array; ck_gates : int }

let checkpoint t = { ck_frontier = Array.copy t.frontier; ck_gates = t.gates }
let checkpoint_gates c = c.ck_gates

let of_checkpoint ~delay c =
  {
    delay;
    frontier = Array.copy c.ck_frontier;
    gates = c.ck_gates;
    live = 0;
    peak = 0;
  }

let result t ~num_qubits =
  let best_d = ref neg_infinity and best_n = ref (-1) in
  let best_e = ref None in
  if num_qubits <= 0 then consider best_d best_n best_e None
  else
    for w = 0 to num_qubits - 1 do
      consider best_d best_n best_e
        (if w < Array.length t.frontier then t.frontier.(w) else None)
    done;
  let cnots, singles = base_counts !best_e in
  {
    (* the finish node carries weight 0, added exactly as the
       materialized sweep does *)
    Critical_path.length = !best_d +. 0.0;
    (* the node sequence is not reconstructable from a frontier; every
       consumer of a streamed result reads [length] and [counts] only *)
    path = [];
    counts = { Critical_path.cnots; singles };
  }

test/test_grover.ml: Alcotest Grover Leqa_benchmarks Leqa_circuit Leqa_core Leqa_fabric Leqa_qodg

(** Wall-clock timing of experiment phases (Table 3 reports tool runtimes). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_seconds : (unit -> unit) -> float
(** Elapsed seconds only. *)

val repeat_median : runs:int -> (unit -> 'a) -> 'a * float
(** Runs [f] [runs] times; returns the last result and the median elapsed
    time, to damp scheduler noise in the runtime comparison tables. *)

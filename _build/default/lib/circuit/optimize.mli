(** Peephole simplification of FT circuits.

    The paper motivates LEQA as a tool for "quickly comparing the latency of
    different software coding techniques"; this module supplies the coding
    transformations to compare: cancellation of adjacent inverse pairs and
    fusion of rotation sequences, applied to fixpoint.

    Rules (sound on the FT gate set):
    - X·X = Y·Y = Z·Z = H·H = identity
    - S·S† = S†·S = T·T† = T†·T = identity
    - T·T = S and T†·T† = S† (halves the expensive non-transversal T count)
    - CNOT·CNOT (same operands) = identity

    Gates on a wire commute past gates on disjoint wires, so cancellation
    looks through interleaved unrelated gates. *)

val simplify : Ft_circuit.t -> Ft_circuit.t
(** Apply all rules to fixpoint.  The result computes the same unitary. *)

val removed_gates : before:Ft_circuit.t -> after:Ft_circuit.t -> int
(** Convenience: gate-count reduction. *)

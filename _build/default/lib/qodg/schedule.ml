module Ft_gate = Leqa_circuit.Ft_gate

type t = {
  qodg : Qodg.t;
  durations : float array; (* per node *)
  asap_times : float array; (* earliest start *)
  alap_times : float array; (* latest start *)
}

(* Nodes are in topological index order by construction (see Qodg), so one
   forward sweep gives ASAP and one backward sweep gives ALAP. *)
let compute qodg ~delay =
  let n = Qodg.num_nodes qodg in
  let dag = Qodg.dag qodg in
  let durations =
    Array.init n (fun node ->
        match Qodg.kind qodg node with
        | Qodg.Start | Qodg.Finish -> 0.0
        | Qodg.Op g -> delay g)
  in
  let asap_times = Array.make n 0.0 in
  for v = 1 to n - 1 do
    List.iter
      (fun p ->
        asap_times.(v) <-
          Float.max asap_times.(v) (asap_times.(p) +. durations.(p)))
      (Dag.preds dag v)
  done;
  let makespan = asap_times.(n - 1) in
  let alap_times = Array.make n makespan in
  for v = n - 2 downto 0 do
    List.iter
      (fun s ->
        alap_times.(v) <-
          Float.min alap_times.(v) (alap_times.(s) -. durations.(v)))
      (Dag.succs dag v)
  done;
  { qodg; durations; asap_times; alap_times }

let asap t node = t.asap_times.(node)

let alap t node = t.alap_times.(node)

let slack t node = t.alap_times.(node) -. t.asap_times.(node)

let makespan t = t.asap_times.(Array.length t.asap_times - 1)

let critical_nodes t =
  List.filter
    (fun node -> abs_float (slack t node) < 1e-9)
    (Qodg.op_nodes t.qodg)

let parallelism_profile t ~bins =
  if bins <= 0 then invalid_arg "Schedule.parallelism_profile: bins <= 0";
  let total = makespan t in
  let histogram = Array.make bins 0 in
  if total > 0.0 then
    List.iter
      (fun node ->
        let start = t.asap_times.(node) in
        let finish = start +. t.durations.(node) in
        let first = int_of_float (start /. total *. float_of_int bins) in
        let last = int_of_float (finish /. total *. float_of_int bins) in
        for b = max 0 first to min (bins - 1) last do
          histogram.(b) <- histogram.(b) + 1
        done)
      (Qodg.op_nodes t.qodg);
  histogram

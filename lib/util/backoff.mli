(** Capped exponential backoff with deterministic jitter.

    One retry schedule shared by every reconnect/restart loop in the
    repository (worker supervision, client re-dial), so churn behaviour
    is uniform and reproducible.  Attempt [k] yields a delay uniformly
    jittered in [\[d/2, d\]] where [d = min cap_s (base_s * 2^(k-1))] —
    "equal jitter": enough spread to break restart synchronization,
    while keeping a floor so a hot crash loop cannot spin. *)

val default_base_s : float
(** 0.05 s. *)

val default_cap_s : float
(** 5 s. *)

val delay_s :
  ?base_s:float -> ?cap_s:float -> seed:int -> attempt:int -> unit -> float
(** Deterministic: the same [(seed, attempt)] always yields the same
    delay (the jitter comes from a splitmix64 stream keyed by both).
    [attempt] counts from 1.
    @raise Invalid_argument on non-positive [base_s], [cap_s < base_s]
    or [attempt < 1]. *)

val sleep_interruptible : should_stop:(unit -> bool) -> float -> unit
(** Sleep in 50 ms slices, returning early once [should_stop ()] —
    so a requested drain never waits out a multi-second backoff. *)

let known_sites =
  [
    "parser"; "pool.task"; "cache.fill"; "cache.poison"; "qspr.step";
    "mc.trial"; "worker.kill"; "store.torn_write"; "store.bitflip";
  ]

type mode =
  | Always
  | Nth of int  (* fire on exactly the n-th hit *)
  | Prob of float * int  (* probability, seed *)

type armed_fault = { mode : mode; mutable hits : int }

let mutex = Mutex.create ()
let table : (string, armed_fault) Hashtbl.t = Hashtbl.create 8

(* read outside the mutex on the hot path; only flipped under it *)
let any_armed = ref false

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  any_armed := false;
  Mutex.unlock mutex

let parse_entry entry =
  match String.split_on_char ':' (String.trim entry) with
  | [] | [ "" ] -> Ok None
  | site :: opts ->
    let n = ref None and p = ref None and seed = ref None in
    let bad msg =
      Error (Error.Config_error (Printf.sprintf "LEQA_FAULTS entry %S: %s" entry msg))
    in
    let rec walk = function
      | [] -> begin
        match (!n, !p, !seed) with
        | Some k, None, None when k >= 1 -> Ok (Some (site, Nth k))
        | Some _, None, None -> bad "n must be >= 1"
        | None, Some pr, s when pr >= 0.0 && pr <= 1.0 ->
          Ok (Some (site, Prob (pr, Option.value s ~default:0)))
        | None, Some _, _ -> bad "p must be in [0,1]"
        | None, None, None -> Ok (Some (site, Always))
        | _ -> bad "n= and p= are mutually exclusive"
      end
      | opt :: rest -> begin
        match String.split_on_char '=' opt with
        | [ "n"; v ] -> begin
          match int_of_string_opt v with
          | Some k -> n := Some k; walk rest
          | None -> bad "n= takes an integer"
        end
        | [ "p"; v ] -> begin
          match float_of_string_opt v with
          | Some pr -> p := Some pr; walk rest
          | None -> bad "p= takes a float"
        end
        | [ "seed"; v ] -> begin
          match int_of_string_opt v with
          | Some s -> seed := Some s; walk rest
          | None -> bad "seed= takes an integer"
        end
        | _ -> bad (Printf.sprintf "unknown option %S (expected n=/p=/seed=)" opt)
      end
    in
    walk opts

let configure spec =
  let entries =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> begin
      match parse_entry e with
      | Ok None -> parse_all acc rest
      | Ok (Some f) -> parse_all (f :: acc) rest
      | Error _ as err -> err
    end
  in
  match parse_all [] entries with
  | Error _ as e -> e
  | Ok faults ->
    Mutex.lock mutex;
    Hashtbl.reset table;
    List.iter
      (fun (site, mode) -> Hashtbl.replace table site { mode; hits = 0 })
      faults;
    any_armed := Hashtbl.length table > 0;
    let armed_sites = Hashtbl.length table in
    Mutex.unlock mutex;
    Telemetry.ambient_gauge "fault.armed_sites" (float_of_int armed_sites);
    Ok ()

let configure_from_env () =
  configure (Option.value (Sys.getenv_opt "LEQA_FAULTS") ~default:"")

let armed () = !any_armed

(* Deterministic per-hit coin for Prob mode: a splitmix64 stream keyed by
   (seed, hit index), so outcomes depend only on the spec and how many
   times the site has been reached — never on thread interleaving. *)
let coin ~seed ~hit_index ~p =
  let rng = Rng.create ~seed:(seed + (0x9E3779B9 * hit_index)) in
  Rng.float rng < p

let fires site =
  if not !any_armed then false
  else begin
    Mutex.lock mutex;
    let result =
      match Hashtbl.find_opt table site with
      | None -> false
      | Some f ->
        f.hits <- f.hits + 1;
        (match f.mode with
        | Always -> true
        | Nth k -> f.hits = k
        | Prob (p, seed) -> coin ~seed ~hit_index:f.hits ~p)
    in
    Mutex.unlock mutex;
    if result then Telemetry.ambient_count ("fault.fired." ^ site);
    result
  end

let hit site =
  if fires site then Error.raise_error (Error.Fault_injected { site })

let hit_result site =
  if fires site then Error (Error.Fault_injected { site }) else Ok ()

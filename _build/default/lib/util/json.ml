type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* shortest representation that round-trips *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        render buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf "\":";
        render buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let write_file path v =
  let oc = open_out path in
  to_channel oc v;
  output_char oc '\n';
  close_out oc

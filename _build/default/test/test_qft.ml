open Leqa_benchmarks
module Circuit = Leqa_circuit.Circuit

let test_gate_count_closed_form () =
  List.iter
    (fun (n, bandwidth) ->
      let circ = Qft.circuit ~bandwidth ~n () in
      Alcotest.(check int)
        (Printf.sprintf "n=%d b=%d" n bandwidth)
        (Qft.gate_count ~bandwidth ~n ())
        (Circuit.num_gates circ))
    [ (2, 8); (4, 2); (8, 8); (16, 4); (32, 8) ]

let test_structure' () =
  let circ = Qft.circuit ~n:8 () in
  Alcotest.(check int) "8 wires" 8 (Circuit.num_qubits circ);
  let k = Circuit.counts circ in
  (* phases: 7+6+5+4+3+2+1 = 28 ladders, each 2 CNOT + swaps 4*3 = 12 CNOT *)
  Alcotest.(check int) "cnots" ((28 * 2) + 12) k.Circuit.cnots;
  Alcotest.(check int) "no toffoli" 0 k.Circuit.toffolis

let test_already_ft () =
  (* the QFT builder emits only FT gates: decomposition is the identity *)
  let circ = Qft.circuit ~n:6 () in
  let ft = Leqa_circuit.Decompose.to_ft circ in
  Alcotest.(check int) "same gate count" (Circuit.num_gates circ)
    (Leqa_circuit.Ft_circuit.num_gates ft)

let test_bandwidth_truncates () =
  let full = Qft.circuit ~bandwidth:31 ~n:32 () in
  let truncated = Qft.circuit ~bandwidth:4 ~n:32 () in
  Alcotest.(check bool) "truncation shrinks" true
    (Circuit.num_gates truncated < Circuit.num_gates full)

let test_estimable () =
  (* end-to-end sanity: the extension family flows through the pipeline *)
  let circ = Qft.circuit ~n:16 () in
  let qodg =
    Leqa_qodg.Qodg.of_ft_circuit (Leqa_circuit.Decompose.to_ft circ)
  in
  let est =
    Leqa_core.Estimator.estimate ~params:Leqa_fabric.Params.calibrated qodg
  in
  let actual = Leqa_qspr.Qspr.run qodg in
  let err =
    Leqa_util.Stats.relative_error ~actual:actual.Leqa_qspr.Qspr.latency_s
      ~estimated:est.Leqa_core.Estimator.latency_s
  in
  if err > 0.15 then
    Alcotest.failf "QFT estimate off by %.1f%%" (100.0 *. err)

let test_invalid () =
  Alcotest.check_raises "n=1" (Invalid_argument "Qft.circuit: n must be >= 2")
    (fun () -> ignore (Qft.circuit ~n:1 ()));
  Alcotest.check_raises "bandwidth=0"
    (Invalid_argument "Qft.circuit: bandwidth must be >= 1") (fun () ->
      ignore (Qft.circuit ~bandwidth:0 ~n:4 ()))

let suite =
  [
    Alcotest.test_case "gate-count closed form" `Quick test_gate_count_closed_form;
    Alcotest.test_case "ladder structure" `Quick test_structure';
    Alcotest.test_case "emits only FT gates" `Quick test_already_ft;
    Alcotest.test_case "bandwidth truncation" `Quick test_bandwidth_truncates;
    Alcotest.test_case "flows through the pipeline" `Quick test_estimable;
    Alcotest.test_case "input validation" `Quick test_invalid;
  ]

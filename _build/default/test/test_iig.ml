open Leqa_iig
module Ft_gate = Leqa_circuit.Ft_gate
module Ft_circuit = Leqa_circuit.Ft_circuit

let circuit_of gates = Ft_circuit.of_gates gates

let test_empty_circuit () =
  let iig = Iig.of_ft_circuit (Ft_circuit.create ~num_qubits:4 ()) in
  Alcotest.(check int) "qubits" 4 (Iig.num_qubits iig);
  Alcotest.(check int) "edges" 0 (Iig.num_edges iig);
  Alcotest.(check int) "weight" 0 (Iig.total_weight iig);
  Alcotest.(check (list int)) "all isolated" [ 0; 1; 2; 3 ]
    (Iig.isolated_qubits iig)

let test_single_ops_add_nothing () =
  let iig =
    Iig.of_ft_circuit
      (circuit_of Ft_gate.[ Single (H, 0); Single (T, 1); Single (X, 0) ])
  in
  Alcotest.(check int) "no edges" 0 (Iig.num_edges iig);
  Alcotest.(check int) "degree 0" 0 (Iig.degree iig 0)

let test_weights_accumulate () =
  let iig =
    Iig.of_ft_circuit
      (circuit_of
         Ft_gate.
           [
             Cnot { control = 0; target = 1 };
             Cnot { control = 1; target = 0 };
             Cnot { control = 0; target = 2 };
           ])
  in
  Alcotest.(check int) "edges" 2 (Iig.num_edges iig);
  Alcotest.(check int) "w(0,1) counts both directions" 2 (Iig.weight iig 0 1);
  Alcotest.(check int) "w symmetric" (Iig.weight iig 0 1) (Iig.weight iig 1 0);
  Alcotest.(check int) "w(0,2)" 1 (Iig.weight iig 0 2);
  Alcotest.(check int) "w(1,2) absent" 0 (Iig.weight iig 1 2);
  Alcotest.(check int) "total weight = #2q ops" 3 (Iig.total_weight iig)

let test_degrees_and_sums () =
  let iig =
    Iig.of_ft_circuit
      (circuit_of
         Ft_gate.
           [
             Cnot { control = 0; target = 1 };
             Cnot { control = 0; target = 2 };
             Cnot { control = 0; target = 2 };
           ])
  in
  Alcotest.(check int) "M_0" 2 (Iig.degree iig 0);
  Alcotest.(check int) "M_1" 1 (Iig.degree iig 1);
  Alcotest.(check int) "M_2" 1 (Iig.degree iig 2);
  Alcotest.(check int) "adj weight sum of 0" 3 (Iig.adjacent_weight_sum iig 0);
  Alcotest.(check int) "adj weight sum of 2" 2 (Iig.adjacent_weight_sum iig 2);
  Alcotest.(check (list int)) "neighbors sorted" [ 1; 2 ] (Iig.neighbors iig 0);
  Alcotest.(check int) "max degree" 2 (Iig.max_degree iig)

let test_iter_edges_each_once () =
  let iig =
    Iig.of_ft_circuit
      (circuit_of
         Ft_gate.
           [
             Cnot { control = 0; target = 1 };
             Cnot { control = 2; target = 1 };
             Cnot { control = 0; target = 2 };
           ])
  in
  let seen = ref [] in
  Iig.iter_edges (fun i j w -> seen := (i, j, w) :: !seen) iig;
  Alcotest.(check int) "3 edges" 3 (List.length !seen);
  List.iter
    (fun (i, j, _) ->
      Alcotest.(check bool) "i<j" true (i < j))
    !seen

let test_sum_adjacent_weights_is_twice_total () =
  (* Σ_i Σ_j w(e_ij) double counts every edge: equals 2 × total weight *)
  let rng = Leqa_util.Rng.create ~seed:12 in
  let circ =
    Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:20 ~gates:500
      ~cnot_fraction:0.6
  in
  let iig = Iig.of_ft_circuit circ in
  let sum = ref 0 in
  for i = 0 to Iig.num_qubits iig - 1 do
    sum := !sum + Iig.adjacent_weight_sum iig i
  done;
  Alcotest.(check int) "handshake lemma" (2 * Iig.total_weight iig) !sum

let test_of_qodg_matches_of_circuit () =
  let rng = Leqa_util.Rng.create ~seed:9 in
  let circ =
    Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:12 ~gates:300
      ~cnot_fraction:0.5
  in
  let a = Iig.of_ft_circuit circ in
  let b = Iig.of_qodg (Leqa_qodg.Qodg.of_ft_circuit circ) in
  Alcotest.(check int) "edges" (Iig.num_edges a) (Iig.num_edges b);
  Alcotest.(check int) "weight" (Iig.total_weight a) (Iig.total_weight b);
  for i = 0 to Iig.num_qubits a - 1 do
    Alcotest.(check int) "degree" (Iig.degree a i) (Iig.degree b i)
  done

let test_out_of_range () =
  let iig = Iig.of_ft_circuit (Ft_circuit.create ~num_qubits:2 ()) in
  Alcotest.check_raises "degree range" (Invalid_argument "Iig: qubit out of range")
    (fun () -> ignore (Iig.degree iig 2))

let suite =
  [
    Alcotest.test_case "empty circuit" `Quick test_empty_circuit;
    Alcotest.test_case "one-qubit ops add no edges" `Quick test_single_ops_add_nothing;
    Alcotest.test_case "weights accumulate per pair" `Quick test_weights_accumulate;
    Alcotest.test_case "degrees and weight sums" `Quick test_degrees_and_sums;
    Alcotest.test_case "iter_edges visits each once" `Quick test_iter_edges_each_once;
    Alcotest.test_case "handshake lemma" `Quick test_sum_adjacent_weights_is_twice_total;
    Alcotest.test_case "of_qodg = of_ft_circuit" `Quick test_of_qodg_matches_of_circuit;
    Alcotest.test_case "bounds checking" `Quick test_out_of_range;
  ]

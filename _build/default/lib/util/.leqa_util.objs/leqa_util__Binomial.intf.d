lib/util/binomial.mli:

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  let sum = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
  sum /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let weighted_mean ~weights ~values =
  if Array.length weights <> Array.length values then
    invalid_arg "Stats.weighted_mean: length mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i w ->
      num := !num +. (w *. values.(i));
      den := !den +. w)
    weights;
  if !den <= 0.0 then invalid_arg "Stats.weighted_mean: non-positive weight";
  !num /. !den

let percentile a ~p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let relative_error ~actual ~estimated =
  if actual = 0.0 then invalid_arg "Stats.relative_error: zero actual";
  abs_float (estimated -. actual) /. abs_float actual

let linear_regression xys =
  match xys with
  | [] | [ _ ] -> invalid_arg "Stats.linear_regression: need >= 2 points"
  | _ ->
    let n = float_of_int (List.length xys) in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 xys in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 xys in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 xys in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 xys in
    let denom = (n *. sxx) -. (sx *. sx) in
    if denom = 0.0 then invalid_arg "Stats.linear_regression: degenerate x";
    let b = ((n *. sxy) -. (sx *. sy)) /. denom in
    let a = (sy -. (b *. sx)) /. n in
    (a, b)

let fit_power_law xys =
  let log_points =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Stats.fit_power_law: non-positive point"
        else (log x, log y))
      xys
  in
  let log_c, k = linear_regression log_points in
  (exp log_c, k)

let geometric_mean a =
  if Array.length a = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value"
        else acc +. log x)
      0.0 a
  in
  exp (sum_logs /. float_of_int (Array.length a))

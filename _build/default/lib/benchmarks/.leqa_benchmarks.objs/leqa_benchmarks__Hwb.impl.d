lib/benchmarks/hwb.ml: Hashtbl Leqa_circuit Leqa_util

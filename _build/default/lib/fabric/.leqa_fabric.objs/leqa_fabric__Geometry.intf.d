lib/fabric/geometry.mli: Format

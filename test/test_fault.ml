module E = Leqa_util.Error
module Fault = Leqa_util.Fault
module Pool = Leqa_util.Pool

(* Every test must leave the process disarmed: faults are global state. *)
let with_faults spec f =
  match Fault.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec (E.to_string e)
  | Ok () -> Fun.protect ~finally:Fault.reset f

let injected site = E.Error (E.Fault_injected { site })

let test_spec_parsing () =
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Alcotest.(check bool) "empty disarms" true (Fault.configure "" = Ok ());
  Alcotest.(check bool) "disarmed" false (Fault.armed ());
  Alcotest.(check bool) "simple site" true (Fault.configure "parser" = Ok ());
  Alcotest.(check bool) "armed" true (Fault.armed ());
  Alcotest.(check bool) "nth" true (Fault.configure "pool.task:n=3" = Ok ());
  Alcotest.(check bool) "prob" true
    (Fault.configure "qspr.step:p=0.5:seed=7" = Ok ());
  Alcotest.(check bool) "multi entry" true
    (Fault.configure "parser;mc.trial:n=2,cache.fill" = Ok ());
  (* unknown sites are allowed (future layers), malformed entries are not *)
  Alcotest.(check bool) "unknown site ok" true
    (Fault.configure "some.future.site" = Ok ());
  let is_config_error = function
    | Error (E.Config_error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad n" true (is_config_error (Fault.configure "parser:n=x"));
  Alcotest.(check bool) "bad p" true (is_config_error (Fault.configure "parser:p=2"));
  Alcotest.(check bool) "bad key" true
    (is_config_error (Fault.configure "parser:whatever=1"))

let test_nth_hit_fires_once () =
  with_faults "x.site:n=3" @@ fun () ->
  let fired = List.init 6 (fun _ -> Fault.fires "x.site") in
  Alcotest.(check (list bool)) "only the 3rd hit"
    [ false; false; true; false; false; false ]
    fired

let test_probabilistic_deterministic () =
  (* same spec => same decision sequence, across reconfigurations *)
  let sample () =
    with_faults "x.site:p=0.3:seed=11" @@ fun () ->
    List.init 64 (fun _ -> Fault.fires "x.site")
  in
  let a = sample () and b = sample () in
  Alcotest.(check (list bool)) "identical sequences" a b;
  Alcotest.(check bool) "some fired" true (List.mem true a);
  Alcotest.(check bool) "some did not" true (List.mem false a);
  let other =
    with_faults "x.site:p=0.3:seed=12" @@ fun () ->
    List.init 64 (fun _ -> Fault.fires "x.site")
  in
  Alcotest.(check bool) "seed changes the sequence" true (a <> other)

(* ---- the instrumented production sites ---- *)

let test_site_parser () =
  with_faults "parser" @@ fun () ->
  match Leqa_circuit.Parser.parse_string ".v a\nBEGIN\nEND\n" with
  | Error (E.Fault_injected { site = "parser" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "fault did not fire"

let test_site_pool_task_and_reuse () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (with_faults "pool.task:n=2" @@ fun () ->
   Alcotest.check_raises "second task faults" (injected "pool.task") (fun () ->
       Pool.parallel_for pool ~chunk:1 8 (fun _ -> ())));
  (* the batch drained and the pool must keep working afterwards *)
  let hits = Array.make 100 0 in
  Pool.parallel_for pool ~chunk:7 100 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "pool reusable after fault" true
    (Array.for_all (fun h -> h = 1) hits)

let test_site_cache_fill () =
  Leqa_core.Coverage.clear_caches ();
  with_faults "cache.fill" @@ fun () ->
  Alcotest.check_raises "store faults" (injected "cache.fill") (fun () ->
      ignore
        (Leqa_core.Coverage.probability_grid ~topology:Leqa_fabric.Params.Grid
           ~avg_area:4.0 ~width:8 ~height:8))

let test_site_cache_poison_evicted () =
  (* poison the first stored grid; the next lookup must detect the NaN,
     evict, recompute — and the recomputed values must be clean *)
  Leqa_core.Coverage.clear_caches ();
  let compute () =
    Leqa_core.Coverage.probability_grid ~topology:Leqa_fabric.Params.Grid
      ~avg_area:4.0 ~width:8 ~height:8
  in
  let poisoned =
    with_faults "cache.poison" @@ fun () ->
    ignore (compute ());
    (* the *returned* grid is the caller's copy, computed before the
       store; the cached entry is the corrupted one *)
    compute ()
  in
  Fault.reset ();
  let clean = compute () in
  Alcotest.(check bool) "recomputed entry is intact" true
    (Array.for_all (fun v -> Float.is_finite v && v >= 0.0) clean);
  Alcotest.(check bool) "poisoned lookup never served NaN" true
    (Array.for_all (fun v -> Float.is_finite v) poisoned);
  Leqa_core.Coverage.clear_caches ()

let test_site_qspr_step () =
  with_faults "qspr.step:n=5" @@ fun () ->
  let qodg =
    Leqa_qodg.Qodg.of_ft_circuit
      (Leqa_circuit.Decompose.to_ft (Leqa_benchmarks.Hamming.ham3 ()))
  in
  Alcotest.check_raises "scheduler faults" (injected "qspr.step") (fun () ->
      ignore (Leqa_qspr.Qspr.run qodg))

let test_site_mc_trial () =
  with_faults "mc.trial:n=3" @@ fun () ->
  let rng = Leqa_util.Rng.create ~seed:5 in
  Alcotest.check_raises "trial faults" (injected "mc.trial") (fun () ->
      ignore
        (Leqa_core.Validation.measure ~rng ~avg_area:4.0 ~width:8 ~height:8
           ~qubits:2 ~trials:10 ~qmax:2 ()))

let test_disarmed_is_free () =
  Fault.reset ();
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  (* a hit on a disarmed process is a no-op, whatever the site *)
  Fault.hit "parser";
  Fault.hit "pool.task";
  Alcotest.(check bool) "fires is false" false (Fault.fires "qspr.step")

let suite =
  [
    Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "n-th hit fires once" `Quick test_nth_hit_fires_once;
    Alcotest.test_case "probabilistic faults deterministic" `Quick
      test_probabilistic_deterministic;
    Alcotest.test_case "site: parser" `Quick test_site_parser;
    Alcotest.test_case "site: pool.task (+pool reuse)" `Quick
      test_site_pool_task_and_reuse;
    Alcotest.test_case "site: cache.fill" `Quick test_site_cache_fill;
    Alcotest.test_case "site: cache.poison eviction" `Quick
      test_site_cache_poison_evicted;
    Alcotest.test_case "site: qspr.step" `Quick test_site_qspr_step;
    Alcotest.test_case "site: mc.trial" `Quick test_site_mc_trial;
    Alcotest.test_case "disarmed probes are no-ops" `Quick test_disarmed_is_free;
  ]

type t = {
  succs : int list array;
  preds : int list array;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Dag.create: negative node count";
  { succs = Array.make n []; preds = Array.make n []; edges = 0 }

let num_nodes g = Array.length g.succs

let num_edges g = g.edges

let check_node g v =
  if v < 0 || v >= num_nodes g then invalid_arg "Dag: node out of range"

let add_edge g ~src ~dst =
  check_node g src;
  check_node g dst;
  if src = dst then invalid_arg "Dag.add_edge: self-loop";
  g.succs.(src) <- dst :: g.succs.(src);
  g.preds.(dst) <- src :: g.preds.(dst);
  g.edges <- g.edges + 1

let succs g v =
  check_node g v;
  g.succs.(v)

let preds g v =
  check_node g v;
  g.preds.(v)

let in_degree g v = List.length (preds g v)

let out_degree g v = List.length (succs g v)

let topological_order g =
  let n = num_nodes g in
  let indeg = Array.init n (fun v -> List.length g.preds.(v)) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.push v queue) indeg;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.push w queue)
      g.succs.(v)
  done;
  if !filled = n then Some order else None

let is_acyclic g = topological_order g <> None

let longest_path g ~weight ~source ~sink =
  check_node g source;
  check_node g sink;
  let order =
    match topological_order g with
    | Some o -> o
    | None -> invalid_arg "Dag.longest_path: graph has a cycle"
  in
  let dist = Array.make (num_nodes g) neg_infinity in
  let parent = Array.make (num_nodes g) (-1) in
  dist.(source) <- weight source;
  Array.iter
    (fun v ->
      if dist.(v) > neg_infinity then
        List.iter
          (fun w ->
            let cand = dist.(v) +. weight w in
            if cand > dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- v
            end)
          g.succs.(v))
    order;
  if dist.(sink) = neg_infinity then
    invalid_arg "Dag.longest_path: sink unreachable from source";
  let rec rebuild v acc =
    if v = source then source :: acc else rebuild parent.(v) (v :: acc)
  in
  (dist.(sink), rebuild sink [])

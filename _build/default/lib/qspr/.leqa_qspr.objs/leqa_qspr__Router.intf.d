lib/qspr/router.mli: Leqa_fabric

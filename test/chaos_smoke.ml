(* End-to-end fault-tolerance gate for the supervised service
   (`leqa serve --workers N --store DIR`):

   A. chaos soak  — 1000 estimate requests over a Unix socket against a
                    4-worker fleet while a worker is SIGKILLed every
                    ~200 requests: zero client-visible failures, ids in
                    order, and every report byte-identical to the
                    one-shot CLI (modulo wall-clock fields).  The
                    master's stats must show the restarts and no lost
                    requests.
   B. warm restart— SIGTERM the fleet, restart it on the same --store:
                    the distinct circuits of part A must come back from
                    the persistent store (warm-hit ratio >= 0.9).
   C. torn write  — a server crashing mid-store-write (store.torn_write
                    fault) leaves a corrupt entry; the restarted server
                    quarantines it, recomputes, and serves the same
                    bytes as if nothing happened.

   Scratch space (store, server logs) goes under $LEQA_CHAOS_DIR if
   set — CI uploads it as an artifact on failure — else a temp dir.

   Usage: chaos_smoke <path-to-leqa-cli> <corpus-dir> *)

module Json = Leqa_util.Json

let cli = ref ""
let failures = ref 0
let checks = ref 0

let check name ok detail =
  incr checks;
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n     %s\n%!" name detail
  end

(* ---- scratch dir ----------------------------------------------------- *)

let scratch =
  match Sys.getenv_opt "LEQA_CHAOS_DIR" with
  | Some d ->
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  | None ->
    let d = Filename.temp_file "leqa_chaos" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d

let ( / ) = Filename.concat

(* ---- JSON helpers ---------------------------------------------------- *)

let volatile =
  [ "runtime_s"; "qspr_runtime_s"; "leqa_runtime_s"; "mapper_runtime_s";
    "speedup"; "telemetry" ]

let rec normalize = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k volatile then None else Some (k, normalize v))
         fields)
  | Json.List items -> Json.List (List.map normalize items)
  | scalar -> scalar

let parse_line name line =
  match Json.of_string line with
  | Ok j -> Some j
  | Error e ->
    check (name ^ " parses") false (e ^ ": " ^ line);
    None

let member_string key j =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let is_ok resp = Json.member "ok" resp = Some (Json.Bool true)

(* ---- server lifecycle ------------------------------------------------ *)

let spawn_server ?env ~log args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let argv = Array.of_list ("leqa" :: args) in
  let pid =
    match env with
    | None -> Unix.create_process !cli argv devnull Unix.stdout logfd
    | Some extra ->
      Unix.create_process_env !cli argv
        (Array.append (Unix.environment ()) [| extra |])
        devnull Unix.stdout logfd
  in
  Unix.close devnull;
  Unix.close logfd;
  pid

(* a stdio server (part C) needs its pipes instead *)
let spawn_stdio_server ?env ~log args =
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  Unix.clear_close_on_exec in_read;
  Unix.clear_close_on_exec out_write;
  let argv = Array.of_list ("leqa" :: args) in
  let pid =
    match env with
    | None -> Unix.create_process !cli argv in_read out_write logfd
    | Some extra ->
      Unix.create_process_env !cli argv
        (Array.append (Unix.environment ()) [| extra |])
        in_read out_write logfd
  in
  Unix.close logfd;
  Unix.close in_read;
  Unix.close out_write;
  (pid, Unix.in_channel_of_descr out_read, Unix.out_channel_of_descr in_write)

let wait_exit name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> check (name ^ ": clean exit") true ""
  | _, Unix.WEXITED c ->
    check (name ^ ": clean exit") false (Printf.sprintf "exit %d" c)
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
    check (name ^ ": clean exit") false (Printf.sprintf "signal %d" s)

let wait_socket path =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        failwith ("server never came up on " ^ path)
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

(* one long-lived client connection; requests and responses are matched
   in send order (the protocol's in-order promise) *)
let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* ---- one-shot baselines ---------------------------------------------- *)

let out_file = scratch / "oneshot.out"

let run_cli args =
  let cmd =
    Printf.sprintf "%s %s >%s 2>/dev/null"
      (Filename.quote !cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out_file)
  in
  let code = Sys.command cmd in
  let ic = open_in out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  (code, out)

(* the distinct circuits cycled through the soak; width/terms are pinned
   so the one-shot argv is exactly equivalent *)
let cases =
  [ "qft:3"; "qft:4"; "qft:5"; "qft:6"; "grover:2"; "grover:3"; "grover:4";
    "qft-adder:3"; "qft-adder:4"; "qft-adder:5"; "qft:7"; "grover:5" ]

let n_cases = List.length cases

let request_of ~id case =
  Printf.sprintf
    "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"estimate\",\"params\":{\"bench\":%S,\"width\":60,\"terms\":20}}"
    id case

let baselines =
  lazy
    (List.map
       (fun case ->
         let code, out =
           run_cli
             [ "estimate"; "-b"; case; "--width"; "60"; "--terms"; "20";
               "--format"; "json" ]
         in
         if code <> 0 then None
         else
           match Json.of_string (String.trim out) with
           | Ok j -> Some (Json.to_string (normalize j))
           | Error _ -> None)
       cases)

let check_parity name resp case_idx =
  match (Json.member "report" resp, List.nth (Lazy.force baselines) case_idx) with
  | Some report, Some expected ->
    let got = Json.to_string (normalize report) in
    check (name ^ " byte parity") (got = expected)
      (Printf.sprintf "case %s\n     served:   %s\n     one-shot: %s"
         (List.nth cases case_idx)
         (String.sub got 0 (min 300 (String.length got)))
         (String.sub expected 0 (min 300 (String.length expected))))
  | None, _ -> check (name ^ " has report") false "no report member"
  | _, None -> check (name ^ " one-shot baseline ran") false "CLI failed"

(* ---- part A: 1000-request soak under worker SIGKILL ------------------ *)

let store_dir = scratch / "store"
let sock = scratch / "chaos.sock"

let fleet_args =
  [ "serve"; "--socket"; sock; "--workers"; "4"; "--store"; store_dir ]

let get_stats name ic oc ~id =
  send oc
    (Printf.sprintf
       "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"stats\"}" id);
  match parse_line name (input_line ic) with
  | None -> None
  | Some resp ->
    check (name ^ " ok") (is_ok resp) "stats answered with an error";
    Json.member "stats" resp

let worker_pids stats =
  match Json.member "worker_pids" stats with
  | Some (Json.List pids) ->
    List.filter_map (function Json.Int p when p > 1 -> Some p | _ -> None) pids
  | _ -> []

let int_member key j =
  match Json.member key j with Some (Json.Int n) -> Some n | _ -> None

let part_a () =
  let pid = spawn_server ~log:(scratch / "server_a.log") fleet_args in
  wait_socket sock;
  let fd, ic, oc = connect sock in
  let total = 1000 in
  let batch = 25 in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let sent = ref 0 in
  let killed = ref 0 in
  let hits = ref 0 and warm = ref 0 and misses = ref 0 in
  let bad = ref 0 in
  while !sent < total do
    (* every ~200 requests: learn the current worker pids, then SIGKILL
       one right after the next batch goes out, so in-flight requests
       die with it and must be retried on a sibling *)
    let victim =
      if !sent > 0 && !sent mod 200 = 0 then begin
        match get_stats "part A: stats" ic oc ~id:(fresh_id ()) with
        | None -> None
        | Some stats -> (
          match worker_pids stats with
          | [] ->
            check "part A: stats lists worker pids" false
              (Json.to_string stats);
            None
          | pids -> Some (List.nth pids (!killed mod List.length pids)))
      end
      else None
    in
    let ids =
      List.init (min batch (total - !sent)) (fun _ ->
          let id = fresh_id () in
          let case = id mod n_cases in
          send oc (request_of ~id (List.nth cases case));
          (id, case))
    in
    sent := !sent + List.length ids;
    (match victim with
    | Some wpid ->
      incr killed;
      (try Unix.kill wpid Sys.sigkill
       with Unix.Unix_error _ ->
         (* raced a restart: the pid is already gone, which is fine *) ())
    | None -> ());
    List.iter
      (fun (id, case) ->
        let name = Printf.sprintf "part A: request %04d" id in
        match parse_line name (input_line ic) with
        | None -> incr bad
        | Some resp ->
          if not (is_ok resp) then begin
            incr bad;
            check (name ^ " ok") false (Json.to_string resp)
          end;
          (match Json.member "id" resp with
          | Some (Json.Int got) when got = id -> ()
          | _ ->
            incr bad;
            check (name ^ " id in order") false (Json.to_string resp));
          (match member_string "cache" resp with
          | Some "hit" -> incr hits
          | Some "warm" -> incr warm
          | _ -> incr misses);
          (* parity spot-check: the first pass over the cases plus a
             sample later keeps the gate fast without losing coverage *)
          if id < n_cases || id mod 97 = 0 then check_parity name resp case)
      ids
  done;
  check "part A: zero client-visible failures" (!bad = 0)
    (Printf.sprintf "%d bad responses" !bad);
  check "part A: workers were killed" (!killed = 4)
    (Printf.sprintf "%d kills" !killed);
  Printf.printf "     part A cache: %d hit, %d warm, %d miss\n%!" !hits !warm
    !misses;
  (* the supervision counters must agree: restarts happened, nothing
     was abandoned.  The last kill's restart sits behind a backoff
     delay, so poll until the counter converges *)
  let rec final_stats tries =
    match get_stats "part A: final stats" ic oc ~id:(fresh_id ()) with
    | None -> None
    | Some stats ->
      let restarts =
        Option.value (int_member "restarts" stats) ~default:(-1)
      in
      if restarts >= !killed || tries <= 0 then Some stats
      else begin
        Unix.sleepf 0.2;
        final_stats (tries - 1)
      end
  in
  (match final_stats 50 with
  | None -> ()
  | Some stats ->
    let restarts = Option.value (int_member "restarts" stats) ~default:(-1) in
    let lost = Option.value (int_member "lost" stats) ~default:(-1) in
    check "part A: supervisor restarted the killed workers" (restarts >= 4)
      (Printf.sprintf "restarts=%d" restarts);
    check "part A: no requests lost" (lost = 0)
      (Printf.sprintf "lost=%d" lost));
  Unix.close fd;
  Unix.kill pid Sys.sigterm;
  wait_exit "part A" pid;
  check "part A: socket removed on drain" (not (Sys.file_exists sock)) sock

(* ---- part B: restart comes back warm from the store ------------------ *)

let part_b () =
  let pid = spawn_server ~log:(scratch / "server_b.log") fleet_args in
  wait_socket sock;
  let fd, ic, oc = connect sock in
  let warm = ref 0 in
  List.iteri
    (fun i case ->
      let name = Printf.sprintf "part B: %s" case in
      send oc (request_of ~id:i case);
      match parse_line name (input_line ic) with
      | None -> ()
      | Some resp ->
        check (name ^ " ok") (is_ok resp) (Json.to_string resp);
        (match member_string "cache" resp with
        | Some "warm" -> incr warm
        | _ -> ());
        check_parity name resp i)
    cases;
  let ratio = float_of_int !warm /. float_of_int n_cases in
  check "part B: warm-hit ratio >= 0.9"
    (ratio >= 0.9)
    (Printf.sprintf "%d of %d warm (%.2f)" !warm n_cases ratio);
  Printf.printf "     part B warm-hit ratio: %.2f\n%!" ratio;
  Unix.close fd;
  Unix.kill pid Sys.sigterm;
  wait_exit "part B" pid

(* ---- part C: torn store write is quarantined, not believed ----------- *)

let part_c () =
  let dir = scratch / "store_torn" in
  let one_req = request_of ~id:0 "qft:4" in
  (* run 1: the store write for the first result is torn mid-payload
     (the response itself is unaffected — the engine answers from the
     computed report, the store is a cache) *)
  let pid, ic, oc =
    spawn_stdio_server
      ~env:"LEQA_FAULTS=store.torn_write:n=1"
      ~log:(scratch / "server_c.log")
      [ "serve"; "--store"; dir ]
  in
  (match parse_line "part C: run 1 response" (send oc one_req; input_line ic) with
  | Some resp ->
    check "part C: run 1 answered ok despite torn store write" (is_ok resp)
      (Json.to_string resp)
  | None -> ());
  close_out oc;
  close_in ic;
  wait_exit "part C: run 1" pid;
  let committed () =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> "tmp" && f <> "quarantine")
    |> List.length
  in
  check "part C: torn entry was committed" (committed () = 1)
    (Printf.sprintf "%d entries" (committed ()));
  (* run 2: a clean restart on the same store must reject the corrupt
     entry, quarantine it, recompute, and still serve identical bytes *)
  let pid, ic, oc =
    spawn_stdio_server ~log:(scratch / "server_c.log")
      [ "serve"; "--store"; dir ]
  in
  send oc one_req;
  (match parse_line "part C: run 2 response" (input_line ic) with
  | Some resp ->
    check "part C: run 2 answered ok" (is_ok resp) (Json.to_string resp);
    check "part C: corrupt entry not served warm"
      (member_string "cache" resp <> Some "warm")
      (Json.to_string resp);
    check_parity "part C: run 2" resp 1 (* cases index of qft:4 *)
  | None -> ());
  (* the same circuit again: the recomputed result must have been
     re-persisted and the in-memory cache hit *)
  send oc (request_of ~id:1 "qft:4");
  (match parse_line "part C: run 2 repeat" (input_line ic) with
  | Some resp ->
    check "part C: repeat is a cache hit"
      (member_string "cache" resp = Some "hit")
      (Json.to_string resp)
  | None -> ());
  close_out oc;
  close_in ic;
  wait_exit "part C: run 2" pid;
  let quarantined =
    let q = dir / "quarantine" in
    if Sys.file_exists q then Array.length (Sys.readdir q) else 0
  in
  check "part C: corrupt entry quarantined" (quarantined = 1)
    (Printf.sprintf "%d quarantined" quarantined);
  check "part C: clean recompute re-persisted" (committed () = 1)
    (Printf.sprintf "%d entries" (committed ()))

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* a wedged fleet must fail the gate, not hang CI *)
  ignore (Unix.alarm 600);
  (match Sys.argv with
  | [| _; c; _corpus |] -> cli := c
  | _ ->
    prerr_endline "usage: chaos_smoke <leqa-cli> <corpus-dir>";
    exit 2);
  Printf.printf "chaos scratch: %s\n%!" scratch;
  part_a ();
  part_b ();
  part_c ();
  Printf.printf "\n%d checks, %d failures\n%!" !checks !failures;
  if !failures > 0 then exit 1

(** Closing the QECC ⟷ latency loop with LEQA.

    The introduction's motivating workflow: the latency of a program
    decides how much error it accumulates, which decides how strong a code
    it needs — and the code strength feeds back into the latency.  Each
    candidate level therefore needs a latency estimate; LEQA makes every
    iteration of the loop cost milliseconds instead of a full mapping.

    Failure model per candidate code: every operation fails with the
    code's per-operation logical error rate, and every qubit also accrues
    idle (decoherence) error for the whole program duration:

    [p_fail ≈ N_ops · ε_L  +  Q · (D / τ_idle) · ε_L]

    where [D] is the LEQA-estimated latency and [τ_idle] the idle-error
    accrual period (one EC cycle).  This is deliberately coarse — it is
    the *shape* of the interdependency the paper describes, with both
    terms depending on the code. *)

type requirement = {
  physical_error_rate : float;  (** per native operation, e.g. 1e-4 *)
  threshold : float;  (** code threshold ε_th, e.g. 1e-2 *)
  target_failure : float;  (** acceptable whole-program failure, e.g. 0.01 *)
  idle_period : float;  (** µs per idle error-accrual step, e.g. 5000 *)
}

val default_requirement : requirement

type candidate = {
  code : Code.t;
  latency_s : float;  (** LEQA estimate under this code's delays *)
  failure_probability : float;
  feasible : bool;
}

val evaluate :
  params:Leqa_fabric.Params.t ->
  requirement:requirement ->
  per_level_delay:float ->
  code:Code.t ->
  Leqa_qodg.Qodg.t ->
  candidate
(** Price one candidate code: scale the fabric delays by the code's
    {!Code.delay_factor} (with [per_level_delay] as the geometric ratio,
    ~20 for concatenated Steane), run LEQA, evaluate the failure model. *)

val select :
  ?max_levels:int ->
  params:Leqa_fabric.Params.t ->
  requirement:requirement ->
  per_level_delay:float ->
  Leqa_qodg.Qodg.t ->
  candidate list * candidate option
(** Evaluate levels 0..max_levels (default 4) and return all candidates
    plus the cheapest feasible one (fewest levels, hence lowest latency). *)

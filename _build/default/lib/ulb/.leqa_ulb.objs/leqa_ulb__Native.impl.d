lib/ulb/native.ml: List

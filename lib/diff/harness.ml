module Circuit = Leqa_circuit.Circuit
module Parser = Leqa_circuit.Parser
module Suite = Leqa_benchmarks.Suite
module E = Leqa_util.Error
module Telemetry = Leqa_util.Telemetry

type reproducer = {
  shrunk : Diff.case;
  shrunk_outcome : Diff.outcome;
  shrink_stats : Shrink.stats;
  path : string option;
}

type row = {
  case : Diff.case;
  outcome : Diff.outcome;
  reproducer : reproducer option;
}

type summary = { rows : row list; cases : int; failures : int; degraded : int }

let default_scale = 0.25

let sides_for circuit =
  let ft = Leqa_circuit.Decompose.to_ft circuit in
  let q = Leqa_circuit.Ft_circuit.num_qubits ft in
  let side =
    max 4 (int_of_float (ceil (sqrt (2.0 *. float_of_int (max 1 q)))))
  in
  [ side; 2 * side ]

let cases_for ~label ~budget circuit =
  List.map
    (fun side ->
      { Diff.label; circuit; width = side; height = side; budget })
    (sides_for circuit)

let suite_cases ?(scale = default_scale) () =
  List.concat_map
    (fun entry ->
      let circuit = Suite.build_scaled entry ~scale in
      cases_for ~label:entry.Suite.name
        ~budget:(Budget.for_benchmark entry.Suite.name)
        circuit)
    Suite.all

let random_cases ?(budget = Budget.default) ~seed ~count () =
  let rng = Leqa_util.Rng.create ~seed in
  List.concat_map
    (fun i ->
      let qubits = 3 + Leqa_util.Rng.int rng ~bound:8 in
      let gates = 5 + Leqa_util.Rng.int rng ~bound:40 in
      let circuit =
        Leqa_benchmarks.Random_circuit.logical ~rng ~qubits ~gates
      in
      let label = Printf.sprintf "random-s%d-%d" seed i in
      (* one fabric per random case: the point is input diversity, not a
         fabric sweep — take the crowded one *)
      match cases_for ~label ~budget circuit with
      | first :: _ -> [ first ]
      | [] -> [])
    (List.init count (fun i -> i))

let single_cases ?(budget = Budget.default) ~label circuit =
  cases_for ~label ~budget circuit

(* ---- the calibration corpus and objective --------------------------- *)

module Estimator = Leqa_core.Estimator
module Qspr = Leqa_qspr.Qspr
module Params = Leqa_fabric.Params

(* cost model for the pool's weighted chunking: a case's evaluation is
   dominated by the QSPR half, roughly FT-gate count x fabric area *)
let case_weight (case : Diff.case) =
  let ops = ref 0 in
  Circuit.iter
    (fun g -> ops := !ops + Leqa_circuit.Decompose.ft_gate_overhead g)
    case.Diff.circuit;
  !ops * case.Diff.width * case.Diff.height

type training_case = {
  t_case : Diff.case;
  t_qubits_ft : int;
  t_weight : int;
  t_prepared : Estimator.prepared;
  t_simulated_us : float;
}

let training_corpus ?(scale = default_scale) ?deadline_s ?benches
    ?(random_count = 16) ~seed ?pool ?(telemetry = Telemetry.noop) () =
  Telemetry.span telemetry "calib.corpus" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  let suite =
    let all = suite_cases ~scale () in
    match benches with
    | None -> all
    | Some names ->
      List.filter (fun (c : Diff.case) -> List.mem c.Diff.label names) all
  in
  let cases = suite @ random_cases ~seed ~count:random_count () in
  (* QSPR runs once per case: the reference latencies do not depend on
     the candidate parameters, so the optimizer never re-runs the
     mapper.  The fan-out keeps case order, so the corpus is identical
     at every pool width. *)
  let scored =
    Leqa_util.Pool.map_list_weighted pool ~weight:case_weight
      ~f:(fun (case : Diff.case) ->
        let ft = Leqa_circuit.Decompose.to_ft case.Diff.circuit in
        let qodg = Leqa_qodg.Qodg.of_ft_circuit ft in
        let params =
          Params.with_fabric Params.calibrated ~width:case.Diff.width
            ~height:case.Diff.height
        in
        let qspr_config =
          {
            Qspr.default_config with
            Qspr.params = { params with Params.v = Params.default.Params.v };
          }
        in
        let deadline =
          match deadline_s with
          | Some seconds -> Leqa_util.Pool.Deadline.after ~seconds
          | None -> Leqa_util.Pool.Deadline.never
        in
        match Qspr.run ~config:qspr_config ~deadline qodg with
        | r
          when Float.is_finite r.Qspr.latency_us && r.Qspr.latency_us > 0.0 ->
          Some
            {
              t_case = case;
              t_qubits_ft = Leqa_circuit.Ft_circuit.num_qubits ft;
              t_weight = case_weight case;
              t_prepared = Estimator.prepare qodg;
              t_simulated_us = r.Qspr.latency_us;
            }
        | _ -> None
        | exception _ -> None)
      cases
  in
  List.filter_map Fun.id scored

type objective_stats = { obj_mean : float; obj_worst : float; obj_cases : int }

(* an estimator crash or non-finite error under a candidate point is a
   finite-but-prohibitive loss, so descent steps away instead of dying *)
let objective_penalty = 1.0e6

let objective ?pool ?(telemetry = Telemetry.noop) ~params_for corpus =
  Telemetry.span telemetry "calib.objective" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  (* evaluation fans across the pool (the estimator half only — cheap but
     numerous); the mean/worst fold below is serial and in case order,
     so the stats are identical at every pool width *)
  let errs =
    Leqa_util.Pool.map_list_weighted pool ~weight:(fun tc -> tc.t_weight)
      ~f:(fun tc ->
        let params = params_for tc in
        match Estimator.estimate_prepared ~params tc.t_prepared with
        | b when Float.is_finite b.Estimator.latency_us ->
          let err =
            Leqa_util.Stats.relative_error ~actual:tc.t_simulated_us
              ~estimated:b.Estimator.latency_us
          in
          if Float.is_finite err then err else objective_penalty
        | _ -> objective_penalty
        | exception _ -> objective_penalty)
      corpus
  in
  let n = List.length errs in
  let sum = List.fold_left ( +. ) 0.0 errs in
  let worst = List.fold_left Float.max 0.0 errs in
  {
    obj_mean = (if n = 0 then 0.0 else sum /. float_of_int n);
    obj_worst = worst;
    obj_cases = n;
  }

(* ---- reproducer corpus --------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
    | Sys_error msg -> E.raise_error (E.Io_error msg)
  end

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    label

let write_reproducer ~dir (case : Diff.case) (outcome : Diff.outcome) =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%dx%d.tfc" (sanitize case.Diff.label)
         case.Diff.width case.Diff.height)
  in
  let header =
    String.concat "\n"
      [
        "# leqa-diff reproducer (leqa/diff/v1)";
        Printf.sprintf "# label: %s" case.Diff.label;
        Printf.sprintf "# fabric: %dx%d" case.Diff.width case.Diff.height;
        Printf.sprintf "# budget: %.17g" case.Diff.budget;
        Printf.sprintf "# classification: %s"
          (Diff.classification_key outcome.Diff.classification);
        "";
      ]
  in
  (try
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc header;
         output_string oc (Parser.to_string case.Diff.circuit))
   with Sys_error msg -> E.raise_error (E.Io_error msg));
  path

(* the metadata header written above, parsed leniently: any missing field
   falls back to a usable default so hand-written corpus files also load *)
let parse_header text =
  let field name =
    let prefix = "# " ^ name ^ ": " in
    List.find_map
      (fun line ->
        if String.length line >= String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then
          Some
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
        else None)
      (String.split_on_char '\n' text)
  in
  let fabric =
    Option.bind (field "fabric") (fun s ->
        match String.split_on_char 'x' (String.trim s) with
        | [ w; h ] -> (
          match (int_of_string_opt w, int_of_string_opt h) with
          | Some w, Some h when w > 0 && h > 0 -> Some (w, h)
          | _ -> None)
        | _ -> None)
  in
  ( field "label",
    fabric,
    Option.bind (field "budget") float_of_string_opt,
    field "classification" )

let replay ~dir =
  let entries =
    try Sys.readdir dir with Sys_error msg -> E.raise_error (E.Io_error msg)
  in
  let files =
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".tfc")
         (Array.to_list entries))
  in
  List.map
    (fun file ->
      let path = Filename.concat dir file in
      let text =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg -> E.raise_error (E.Io_error msg)
      in
      let circuit = E.ok_exn (Parser.parse_string ~file:path text) in
      let label, fabric, budget, classification = parse_header text in
      let label = Option.value label ~default:(Filename.chop_extension file) in
      let budget = Option.value budget ~default:Budget.default in
      let width, height =
        match fabric with
        | Some wh -> wh
        | None -> (
          match sides_for circuit with s :: _ -> (s, s) | [] -> (4, 4))
      in
      ({ Diff.label; circuit; width; height; budget }, classification))
    files

(* ---- the run loop --------------------------------------------------- *)

let run ?deadline_s ?conventions ?(shrink = true) ?shrink_dir ?max_evals ?pool
    ?(telemetry = Telemetry.noop) cases =
  Telemetry.span telemetry "diff.run" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  (* phase 1: score every case across the pool.  Spans are a single flow
     of control, so workers run with the noop registry; the summary
     counters are bumped in the serial fold below, making totals
     identical at every pool width. *)
  let outcomes =
    Telemetry.span telemetry "diff.evaluate" @@ fun () ->
    Leqa_util.Pool.map_list_weighted pool ~weight:case_weight
      ~f:(fun case -> Diff.run_case ?deadline_s ?conventions case)
      cases
  in
  (* phase 2, serial and in case order: shrink failures, write
     reproducers, tally. *)
  let rows =
    List.map2
      (fun case outcome ->
        Telemetry.count telemetry "diff.cases";
        let reproducer =
          if not (Diff.failed outcome.Diff.classification) then begin
            if outcome.Diff.classification = Diff.Degraded then
              Telemetry.count telemetry "diff.degraded";
            None
          end
          else begin
            Telemetry.count telemetry "diff.failures";
            if not shrink then
              Some
                {
                  shrunk = case;
                  shrunk_outcome = outcome;
                  shrink_stats =
                    {
                      Shrink.evaluations = 0;
                      gates_before = Circuit.num_gates case.Diff.circuit;
                      gates_after = Circuit.num_gates case.Diff.circuit;
                    };
                  path = None;
                }
            else begin
              let shrunk, shrunk_outcome, shrink_stats =
                Telemetry.span telemetry "diff.shrink" @@ fun () ->
                Shrink.shrink ?deadline_s ?conventions ?max_evals ~pool case
                  outcome
              in
              Telemetry.count_n telemetry "diff.shrink.evaluations"
                shrink_stats.Shrink.evaluations;
              let path =
                Option.map
                  (fun dir -> write_reproducer ~dir shrunk shrunk_outcome)
                  shrink_dir
              in
              Some { shrunk; shrunk_outcome; shrink_stats; path }
            end
          end
        in
        { case; outcome; reproducer })
      cases outcomes
  in
  {
    rows;
    cases = List.length rows;
    failures =
      List.length
        (List.filter (fun r -> Diff.failed r.outcome.Diff.classification) rows);
    degraded =
      List.length
        (List.filter
           (fun r -> r.outcome.Diff.classification = Diff.Degraded)
           rows);
  }

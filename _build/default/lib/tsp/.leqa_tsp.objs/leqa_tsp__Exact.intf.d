lib/tsp/exact.mli:

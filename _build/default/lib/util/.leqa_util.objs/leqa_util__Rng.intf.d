lib/util/rng.mli:

(* splitmix64: tiny, fast, passes BigCrush for this use; chosen over
   Stdlib.Random to guarantee identical streams across OCaml versions. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_state s =
  s.state <- Int64.add s.state 0x9E3779B97F4A7C15L;
  s.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 s = mix (next_state s)

let split s =
  let seed = Int64.to_int (int64 s) in
  { state = Int64.of_int seed }

let int s ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let v = Int64.to_int (Int64.logand (int64 s) mask) in
  v mod bound

let float s =
  (* 53 high bits -> uniform in [0,1). *)
  let bits = Int64.shift_right_logical (int64 s) 11 in
  Int64.to_float bits /. 9007199254740992.0

let float_range s ~lo ~hi = lo +. ((hi -. lo) *. float s)

let bool s = Int64.logand (int64 s) 1L = 1L

let exponential s ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float s in
  -.log u /. rate

let shuffle s a =
  for i = Array.length a - 1 downto 1 do
    let j = int s ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

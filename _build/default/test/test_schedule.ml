open Leqa_qodg
module Ft_gate = Leqa_circuit.Ft_gate
module Ft_circuit = Leqa_circuit.Ft_circuit

let feq = Alcotest.(check (float 1e-9))

let qodg_of gates = Qodg.of_ft_circuit (Ft_circuit.of_gates gates)

let unit_delay _ = 1.0

let test_chain () =
  (* 3 sequential ops on one wire: asap 0,1,2; zero slack everywhere *)
  let qodg = qodg_of Ft_gate.[ Single (H, 0); Single (T, 0); Single (X, 0) ] in
  let s = Schedule.compute qodg ~delay:unit_delay in
  feq "makespan" 3.0 (Schedule.makespan s);
  List.iteri
    (fun i node ->
      feq (Printf.sprintf "asap %d" node) (float_of_int i) (Schedule.asap s node);
      feq (Printf.sprintf "slack %d" node) 0.0 (Schedule.slack s node))
    (Qodg.op_nodes qodg)

let test_parallel_slack () =
  (* long chain on wire 0 (3 ops), single op on wire 1: the lone op has
     slack 2 *)
  let qodg =
    qodg_of
      Ft_gate.[ Single (H, 0); Single (H, 0); Single (H, 0); Single (T, 1) ]
  in
  let s = Schedule.compute qodg ~delay:unit_delay in
  feq "makespan" 3.0 (Schedule.makespan s);
  (* node 4 is the T on wire 1 *)
  feq "asap of lone op" 0.0 (Schedule.asap s 4);
  feq "alap of lone op" 2.0 (Schedule.alap s 4);
  feq "slack of lone op" 2.0 (Schedule.slack s 4)

let test_critical_nodes_match_critical_path () =
  let qodg =
    Qodg.of_ft_circuit
      (Leqa_circuit.Decompose.to_ft (Leqa_benchmarks.Hamming.ham3 ()))
  in
  let delay = Leqa_fabric.Params.gate_delay Leqa_fabric.Params.default in
  let s = Schedule.compute qodg ~delay in
  let cp = Critical_path.compute qodg ~delay in
  feq "makespan = critical path length" cp.Critical_path.length
    (Schedule.makespan s);
  (* every node on the critical path has zero slack *)
  List.iter
    (fun node ->
      match Qodg.kind qodg node with
      | Qodg.Start | Qodg.Finish -> ()
      | Qodg.Op _ ->
        if abs_float (Schedule.slack s node) > 1e-6 then
          Alcotest.failf "critical node %d has slack %f" node
            (Schedule.slack s node))
    cp.Critical_path.path

let test_slack_nonnegative () =
  let rng = Leqa_util.Rng.create ~seed:44 in
  let circ =
    Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:8 ~gates:300
      ~cnot_fraction:0.5
  in
  let qodg = Qodg.of_ft_circuit circ in
  let s = Schedule.compute qodg ~delay:unit_delay in
  List.iter
    (fun node ->
      if Schedule.slack s node < -1e-9 then
        Alcotest.failf "negative slack at node %d" node)
    (Qodg.op_nodes qodg)

let test_alap_bounded_by_makespan () =
  let rng = Leqa_util.Rng.create ~seed:45 in
  let circ =
    Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:6 ~gates:120
      ~cnot_fraction:0.3
  in
  let qodg = Qodg.of_ft_circuit circ in
  let s = Schedule.compute qodg ~delay:unit_delay in
  List.iter
    (fun node ->
      Alcotest.(check bool) "alap + dur <= makespan" true
        (Schedule.alap s node +. 1.0 <= Schedule.makespan s +. 1e-9))
    (Qodg.op_nodes qodg)

let test_parallelism_profile () =
  (* two independent 2-op chains: parallelism 2 throughout *)
  let qodg =
    qodg_of
      Ft_gate.
        [ Single (H, 0); Single (H, 1); Single (T, 0); Single (T, 1) ]
  in
  let s = Schedule.compute qodg ~delay:unit_delay in
  let profile = Schedule.parallelism_profile s ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length profile);
  Alcotest.(check bool) "two-wide" true (profile.(0) >= 2 && profile.(1) >= 2)

let test_profile_empty_circuit () =
  let qodg = Qodg.of_ft_circuit (Ft_circuit.create ~num_qubits:1 ()) in
  let s = Schedule.compute qodg ~delay:unit_delay in
  let profile = Schedule.parallelism_profile s ~bins:4 in
  Alcotest.(check (array int)) "all zero" [| 0; 0; 0; 0 |] profile

let test_profile_invalid_bins () =
  let qodg = qodg_of [ Ft_gate.Single (Ft_gate.H, 0) ] in
  let s = Schedule.compute qodg ~delay:unit_delay in
  Alcotest.check_raises "bins=0"
    (Invalid_argument "Schedule.parallelism_profile: bins <= 0") (fun () ->
      ignore (Schedule.parallelism_profile s ~bins:0))

let suite =
  [
    Alcotest.test_case "sequential chain" `Quick test_chain;
    Alcotest.test_case "parallel branch slack" `Quick test_parallel_slack;
    Alcotest.test_case "critical nodes vs critical path" `Quick
      test_critical_nodes_match_critical_path;
    Alcotest.test_case "slack is non-negative" `Quick test_slack_nonnegative;
    Alcotest.test_case "alap bounded by makespan" `Quick
      test_alap_bounded_by_makespan;
    Alcotest.test_case "parallelism profile" `Quick test_parallelism_profile;
    Alcotest.test_case "profile of empty circuit" `Quick test_profile_empty_circuit;
    Alcotest.test_case "profile input validation" `Quick test_profile_invalid_bins;
  ]

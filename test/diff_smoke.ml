(* End-to-end accuracy gate (DESIGN.md §10): drives the real leqa binary
   through the differential harness and asserts the ACCURACY.md contract:

   - `leqa diff` over the full benchmark suite stays within the
     checked-in per-benchmark budgets (exit 0), and its JSON report is a
     well-formed leqa/report/v1 document;
   - an injected kernel fault (LEQA_FAULTS=cache.fill) is caught,
     classified, shrunk to a reproducer of <= 8 gates, and exits with
     the accuracy-error code (70);
   - replaying the written corpus without the fault passes clean, so
     reproducer netlists are valid regression inputs.

   Usage: diff_smoke <path-to-leqa-cli> *)

let cli = ref ""
let failures = ref 0
let checks = ref 0

let out_file = Filename.temp_file "leqa_diff_smoke" ".out"
let err_file = Filename.temp_file "leqa_diff_smoke" ".err"

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_cli ?(env = "") args =
  let cmd =
    Printf.sprintf "%s%s %s >%s 2>%s"
      (if env = "" then "" else env ^ " ")
      (Filename.quote !cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  (code, slurp out_file, slurp err_file)

let check name ok detail =
  incr checks;
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n     %s\n%!" name detail
  end

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* gates in a .tfc netlist: the lines between BEGIN and END that are not
   blank or [#] comments *)
let gate_count path =
  let body = slurp path in
  let in_body = ref false and n = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      let up = String.uppercase_ascii line in
      if up = "BEGIN" then in_body := true
      else if up = "END" then in_body := false
      else if !in_body && line <> "" && line.[0] <> '#' then incr n)
    (String.split_on_char '\n' body);
  !n

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "leqa-diff-smoke-%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> cleanup (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then cleanup dir)
    (fun () -> f dir)

let () =
  (match Sys.argv with
  | [| _; c |] -> cli := c
  | _ ->
    prerr_endline "usage: diff_smoke <leqa-cli>";
    exit 2);

  (* 1. the whole suite, against the checked-in budgets *)
  let code, out, err = run_cli [ "diff"; "--no-shrink" ] in
  check "suite within ACCURACY.md budgets -> exit 0" (code = 0)
    (Printf.sprintf "exit %d (stderr: %s)" code (String.trim err));
  check "suite report names every case"
    (contains out "gf2^256mult" && contains out "8bitadder")
    "human report missing suite rows";

  let code, out, err = run_cli [ "diff"; "--no-shrink"; "--format"; "json" ] in
  let out = String.trim out in
  check "suite json -> exit 0" (code = 0) (String.trim err);
  check "suite json is a leqa/report/v1 document"
    (String.length out > 1
    && out.[0] = '{'
    && out.[String.length out - 1] = '}'
    && contains out "\"schema_version\":\"leqa/report/v1\""
    && contains out "\"command\":\"diff\"")
    out;

  (* 2. injected kernel fault: caught, shrunk small, exit 70 *)
  with_temp_dir @@ fun dir ->
  let code, _, err =
    run_cli ~env:"LEQA_FAULTS=cache.fill"
      [ "diff"; "-b"; "ham15"; "--shrink-dir"; dir ]
  in
  check "injected fault -> accuracy error (exit 70)" (code = 70)
    (Printf.sprintf "exit %d (stderr: %s)" code (String.trim err));
  check "error names the diff harness" (contains err "diverged")
    (String.trim err);
  let reproducers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tfc")
  in
  check "reproducers written"
    (List.length reproducers > 0)
    (Printf.sprintf "%d .tfc files under %s" (List.length reproducers) dir);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let gates = gate_count path in
      check
        (Printf.sprintf "reproducer %s shrunk to <= 8 gates" f)
        (gates <= 8)
        (Printf.sprintf "%d gates" gates);
      check
        (Printf.sprintf "reproducer %s records the classification" f)
        (contains (slurp path) "# classification: estimator-error:fault-injected")
        (slurp path))
    reproducers;

  (* 3. the corpus replays clean once the fault is gone *)
  let code, _, err = run_cli [ "diff"; "--replay"; dir ] in
  check "corpus replays clean without the fault" (code = 0)
    (Printf.sprintf "exit %d (stderr: %s)" code (String.trim err));

  Sys.remove out_file;
  Sys.remove err_file;
  Printf.printf "\n%d checks, %d failures\n%!" !checks !failures;
  if !failures > 0 then exit 1

examples/mapper_anatomy.mli:

(** Minimal directed-acyclic-graph container with the operations the QODG
    needs: edge insertion, topological ordering and node-weighted longest
    path.  Nodes are dense integers [0 .. n-1]. *)

type t

val create : int -> t
(** [create n] makes a graph with [n] nodes and no edges. *)

val num_nodes : t -> int

val num_edges : t -> int

val add_edge : t -> src:int -> dst:int -> unit
(** Adds a directed edge.  Duplicates are the caller's concern (the QODG
    builder merges parallel edges before insertion, per the paper).
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val succs : t -> int -> int list

val preds : t -> int -> int list

val in_degree : t -> int -> int

val out_degree : t -> int -> int

val topological_order : t -> int array option
(** Kahn's algorithm; [None] if the graph has a cycle. *)

val is_acyclic : t -> bool

val longest_path :
  t -> weight:(int -> float) -> source:int -> sink:int -> float * int list
(** Node-weighted longest path from [source] to [sink]; the length includes
    both endpoint weights, and the path is returned source-first.
    @raise Invalid_argument if the graph is cyclic or [sink] is unreachable
    from [source]. *)

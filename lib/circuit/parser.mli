(** Reader/writer for a [.tfc]-style netlist format (the format of the
    Maslov reversible-benchmark suite the paper draws from [12]), extended
    with the one-qubit FT gates so decomposed circuits round-trip.

    Grammar (case-insensitive keywords, [#] comments):
    {v
    .v q0,q1,q2          # wire declaration (names are arbitrary tokens)
    BEGIN
    t1 q0                # NOT
    t2 q0,q1             # CNOT   (control first, target last)
    t3 q0,q1,q2          # Toffoli
    t5 a,b,c,d,e         # 4-controlled NOT, last wire is the target
    f3 q0,q1,q2          # Fredkin (control, swap pair)
    h q0 / s q0 / sdg q0 / t q0 / tdg q0 / x q0 / y q0 / z q0
    END
    v} *)

val parse_string : ?file:string -> string -> (Circuit.t, Leqa_util.Error.t) result
(** Parse a whole netlist.  Failures are [Parse_error]s carrying the line
    number (and [file], when given, for rendering).  Rejected inputs
    include unknown mnemonics, gates whose operand list repeats a wire
    (e.g. [t2 a,a]), duplicate wire declarations, gates outside
    [BEGIN]/[END], and content after [END]. *)

val parse_file : string -> (Circuit.t, Leqa_util.Error.t) result
(** {!parse_string} on the file's contents; an unreadable path is an
    [Io_error]. *)

val iter_file :
  ?on_begin:(int -> unit) ->
  string ->
  f:(Gate.t -> unit) ->
  (int, Leqa_util.Error.t) result
(** Streaming parse: [f] receives each gate in program order while only
    one line of the netlist is resident, and the declared wire count is
    returned on success — million-op netlists never materialize.  Same
    grammar and failures as {!parse_file}, with one extra restriction:
    every wire a gate names must be declared in a [.v] line before
    [BEGIN] ([Parse_error] otherwise, including a [.v] after [BEGIN]),
    so downstream consumers (ancilla numbering in the streaming
    decomposer) know the wire count before the first gate arrives —
    [on_begin] delivers it when [BEGIN] is seen.  The file is reopened
    per call; run it twice for two passes. *)

val to_string : Circuit.t -> string
(** Render in the same format (wires named [q0..qN-1]). *)

val write_file : string -> Circuit.t -> unit

lib/qecc/code.mli:

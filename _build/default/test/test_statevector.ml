open Leqa_circuit

let feq eps = Alcotest.(check (float eps))

let test_initial_state () =
  let s = Statevector.create ~num_qubits:3 ~basis:5 in
  feq 1e-12 "amplitude at basis" 1.0 (Statevector.probability s 5);
  feq 1e-12 "elsewhere" 0.0 (Statevector.probability s 0);
  feq 1e-12 "normalised" 1.0 (Statevector.norm s);
  Alcotest.(check (option int)) "measures back" (Some 5)
    (Statevector.measure_basis s)

let test_bounds () =
  Alcotest.check_raises "too many qubits"
    (Invalid_argument "Statevector.create: qubit count out of range")
    (fun () -> ignore (Statevector.create ~num_qubits:21 ~basis:0));
  Alcotest.check_raises "basis range"
    (Invalid_argument "Statevector.create: basis out of range") (fun () ->
      ignore (Statevector.create ~num_qubits:2 ~basis:4))

let test_x_flips () =
  let s = Statevector.create ~num_qubits:2 ~basis:0 in
  Statevector.apply s (Ft_gate.Single (Ft_gate.X, 1));
  Alcotest.(check (option int)) "X flips bit 1" (Some 2)
    (Statevector.measure_basis s)

let test_h_superposition () =
  let s = Statevector.create ~num_qubits:1 ~basis:0 in
  Statevector.apply s (Ft_gate.Single (Ft_gate.H, 0));
  feq 1e-12 "p(0)" 0.5 (Statevector.probability s 0);
  feq 1e-12 "p(1)" 0.5 (Statevector.probability s 1);
  Alcotest.(check (option int)) "not a basis state" None
    (Statevector.measure_basis s);
  (* H is self-inverse *)
  Statevector.apply s (Ft_gate.Single (Ft_gate.H, 0));
  Alcotest.(check (option int)) "H H = I" (Some 0) (Statevector.measure_basis s)

let test_bell_state () =
  let s = Statevector.create ~num_qubits:2 ~basis:0 in
  Statevector.apply s (Ft_gate.Single (Ft_gate.H, 0));
  Statevector.apply s (Ft_gate.Cnot { control = 0; target = 1 });
  feq 1e-12 "p(00)" 0.5 (Statevector.probability s 0);
  feq 1e-12 "p(11)" 0.5 (Statevector.probability s 3);
  feq 1e-12 "p(01)" 0.0 (Statevector.probability s 1);
  feq 1e-12 "norm" 1.0 (Statevector.norm s)

let test_t_phases_compose () =
  (* T⁴ = Z, checked via S²: apply T 4 times to |1⟩, expect phase −1 *)
  let s = Statevector.create ~num_qubits:1 ~basis:1 in
  for _ = 1 to 4 do
    Statevector.apply s (Ft_gate.Single (Ft_gate.T, 0))
  done;
  let re, im = Statevector.amplitude s 1 in
  feq 1e-9 "T^4 = Z: real = -1" (-1.0) re;
  feq 1e-9 "imag 0" 0.0 im

let test_unitarity_random_circuit () =
  let rng = Leqa_util.Rng.create ~seed:73 in
  let circ =
    Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:6 ~gates:300
      ~cnot_fraction:0.4
  in
  let s = Statevector.create ~num_qubits:6 ~basis:17 in
  Statevector.run s circ;
  feq 1e-9 "norm preserved" 1.0 (Statevector.norm s)

let test_fidelity () =
  let a = Statevector.create ~num_qubits:2 ~basis:0 in
  let b = Statevector.create ~num_qubits:2 ~basis:0 in
  feq 1e-12 "same state" 1.0 (Statevector.fidelity a b);
  Statevector.apply b (Ft_gate.Single (Ft_gate.X, 0));
  feq 1e-12 "orthogonal" 0.0 (Statevector.fidelity a b);
  (* global phase invisible to fidelity: Z on |1> *)
  let c = Statevector.create ~num_qubits:1 ~basis:1 in
  let d = Statevector.create ~num_qubits:1 ~basis:1 in
  Statevector.apply d (Ft_gate.Single (Ft_gate.Z, 0));
  feq 1e-12 "global phase" 1.0 (Statevector.fidelity c d)

let test_toffoli_network_equivalence () =
  (* the flagship use: Decompose's Toffoli network is unitarily the
     identity-on-controls, flip-on-target map *)
  let network =
    Ft_circuit.of_gates ~num_qubits:3
      (Decompose.toffoli_ft_network ~c1:0 ~c2:1 ~target:2)
  in
  (* reference Toffoli via direct basis permutation, built from H-free
     CNOT conjugations is unavailable; instead check action basis by
     basis *)
  for basis = 0 to 7 do
    let s = Statevector.create ~num_qubits:3 ~basis in
    Statevector.run s network;
    let expected =
      if basis land 1 <> 0 && basis land 2 <> 0 then basis lxor 4 else basis
    in
    Alcotest.(check (option int))
      (Printf.sprintf "basis %d" basis)
      (Some expected)
      (Statevector.measure_basis s)
  done

let test_equivalence_checker () =
  let a =
    Ft_circuit.of_gates ~num_qubits:2
      Ft_gate.[ Single (H, 0); Single (H, 0) ]
  in
  let empty = Ft_circuit.create ~num_qubits:2 () in
  Alcotest.(check bool) "H H == I" true
    (Statevector.equivalent_on_basis ~num_qubits:2 a empty);
  let x = Ft_circuit.of_gates ~num_qubits:2 [ Ft_gate.Single (Ft_gate.X, 0) ] in
  Alcotest.(check bool) "X /= I" false
    (Statevector.equivalent_on_basis ~num_qubits:2 x empty)

let test_optimizer_equivalence_via_statevector () =
  (* the peephole optimizer preserves the full unitary, not just the
     classical action: verified on random 4-qubit FT circuits *)
  let rng = Leqa_util.Rng.create ~seed:29 in
  for _ = 1 to 10 do
    let circ =
      Leqa_benchmarks.Random_circuit.ft ~rng ~qubits:4 ~gates:60
        ~cnot_fraction:0.3
    in
    let simplified = Optimize.simplify circ in
    if not (Statevector.equivalent_on_basis ~num_qubits:4 circ simplified)
    then Alcotest.fail "optimizer changed the unitary"
  done

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "X permutes" `Quick test_x_flips;
    Alcotest.test_case "H superposition" `Quick test_h_superposition;
    Alcotest.test_case "Bell state" `Quick test_bell_state;
    Alcotest.test_case "T^4 = Z" `Quick test_t_phases_compose;
    Alcotest.test_case "unitarity on random circuits" `Quick
      test_unitarity_random_circuit;
    Alcotest.test_case "fidelity" `Quick test_fidelity;
    Alcotest.test_case "Toffoli network equivalence" `Quick
      test_toffoli_network_equivalence;
    Alcotest.test_case "equivalence checker" `Quick test_equivalence_checker;
    Alcotest.test_case "optimizer preserves the unitary" `Slow
      test_optimizer_equivalence_via_statevector;
  ]

lib/benchmarks/random_circuit.mli: Leqa_circuit Leqa_util

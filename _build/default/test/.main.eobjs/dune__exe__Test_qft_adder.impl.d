test/test_qft_adder.ml: Adder Alcotest Leqa_benchmarks Leqa_circuit Leqa_core Leqa_fabric Leqa_iig Leqa_qodg Qft_adder

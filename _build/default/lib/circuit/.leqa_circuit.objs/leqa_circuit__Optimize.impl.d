lib/circuit/optimize.ml: Array Ft_circuit Ft_gate Gate List

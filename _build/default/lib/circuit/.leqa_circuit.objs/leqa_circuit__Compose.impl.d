lib/circuit/compose.ml: Ft_circuit Ft_gate List

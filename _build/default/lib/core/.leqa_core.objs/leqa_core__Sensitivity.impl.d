lib/core/sensitivity.ml: Estimator Leqa_fabric List

(** Deterministic splitmix64 pseudo-random number generator.

    Every stochastic component of the repository (placement, Monte-Carlo
    validation, synthetic benchmark generation) draws from an explicit [t]
    so that runs are reproducible and independent streams never interfere. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream (for parallel sub-experiments). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** Uniform integer in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> lo:float -> hi:float -> float

val bool : t -> bool

val exponential : t -> rate:float -> float
(** Sample from Exp(rate); used by the queueing-model validation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

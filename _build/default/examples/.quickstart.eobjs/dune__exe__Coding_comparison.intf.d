examples/coding_comparison.mli:

(** Fault-tolerant quantum operations — the gate set a ULB executes
    (Section 2): the one-qubit gates {H, T, T†, S, S†, X, Y, Z} and CNOT,
    the only two-qubit operation. *)

type single_kind = Gate.single_kind = X | Y | Z | H | S | Sdg | T | Tdg

type t =
  | Single of single_kind * int
  | Cnot of { control : int; target : int }

val qubits : t -> int list

val max_qubit : t -> int

val is_cnot : t -> bool

val to_gate : t -> Gate.t
(** Embed into the logical gate type. *)

val of_gate : Gate.t -> t option
(** [Some] for gates already in the FT set, [None] for Toffoli-and-above. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all_single_kinds : single_kind list
(** The eight one-qubit FT kinds, in a fixed order used by delay tables. *)

val single_kind_index : single_kind -> int
(** Position of a kind inside [all_single_kinds]. *)

(** QSPR — the detailed quantum scheduling/placement/routing baseline the
    paper compares LEQA against (reference [20], rebuilt here on the tiled
    architecture of Figure 1).  Expensive but "exact": it simulates every
    qubit movement.  See DESIGN.md for the substitution notes. *)

type config = {
  params : Leqa_fabric.Params.t;
  placement : Placement.strategy;
  routing : Router.mode;
}

val default_config : config
(** Table 1 parameters, [Spread] placement, A* routing. *)

type result = {
  latency_us : float;  (** actual program latency, µs *)
  latency_s : float;  (** same, seconds (Table 2's unit) *)
  stats : Scheduler.stats;
}

val run :
  ?config:config ->
  ?deadline:Leqa_util.Pool.Deadline.t ->
  ?trace:Trace.t ->
  Leqa_qodg.Qodg.t ->
  result
(** Pass [trace] to record every executed operation (see {!Trace}).
    @raise Leqa_util.Error.Error ([Timed_out]) once [deadline] expires
    (checked in the scheduler's event loop). *)

val run_circuit :
  ?config:config ->
  ?deadline:Leqa_util.Pool.Deadline.t ->
  ?trace:Trace.t ->
  Leqa_circuit.Ft_circuit.t ->
  result
(** Builds the QODG and runs. *)

type validated = {
  breakdown : Leqa_core.Estimator.breakdown;
      (** the analytic LEQA estimate; [degraded = true] when the detailed
          simulation hit the deadline and was abandoned *)
  simulated : result option;  (** [None] exactly when degraded *)
}

val run_validated :
  ?config:config ->
  ?estimator_config:Leqa_core.Config.t ->
  ?deadline:Leqa_util.Pool.Deadline.t ->
  ?telemetry:Leqa_util.Telemetry.t ->
  Leqa_qodg.Qodg.t ->
  validated
(** LEQA estimate plus the QSPR ground truth for the same QODG.  The
    estimate always runs to completion (it is the cheap path); only the
    simulation honours [deadline].  On expiry the result degrades
    gracefully to the analytic estimate instead of raising.  [telemetry]
    (default: no-op, zero cost) wraps the simulation in a
    ["qspr.simulate"] span and hands the estimator its phase spans — the
    ?telemetry pattern of DESIGN.md §8. *)

(** Fitted parameter tables per fabric-density regime (DESIGN.md §13).

    The free parameters of the latency model — the channel speed [v],
    the hop time [T_move], the empirical one-qubit multiplier
    [lg_mult] and the congestion slope [cong_slope] — are fitted
    offline by [leqa calibrate] against the QSPR reference mapper and
    checked in as {!Calib_data} (a generated module of canonical
    [%.17g] float strings).  {!resolve} maps a named convention plus a
    circuit's regime to concrete {!Leqa_fabric.Params.t} values; the
    estimator applies it when asked for [Fitted] conventions. *)

type conventions =
  | Default  (** the paper's Table 1 values (v = 0.001) *)
  | Calibrated  (** the one-shot global calibration (v = 0.005) *)
  | Fitted  (** per-regime fitted tables from {!Calib_data} *)

val conventions_to_string : conventions -> string

val conventions_of_string :
  string -> (conventions, Leqa_util.Error.t) result
(** Accepts ["default" | "calibrated" | "fitted"]; anything else is a
    [Usage_error]. *)

type regime = { crowded : bool; large : bool }

val regime_key : regime -> string
(** Stable bucket tag: ["crowded-small"], ["crowded-large"],
    ["spacious-small"], ["spacious-large"]. *)

val all_regimes : regime list
(** The four buckets, in table order. *)

val regime_of : qubits_ft:int -> width:int -> height:int -> regime
(** Bucket a circuit–fabric pair: [crowded] iff the FT-qubit
    utilization [2·Q_ft / (width·height)] is ≥ 0.5, [large] iff the
    longer side exceeds 16 ULBs — the same cuts the fitting loop uses,
    so resolution and training always agree. *)

type entry = {
  e_v : float;
  e_t_move : float;
  e_lg_mult : float;
  e_cong_slope : float;
  e_mean_err : float;  (** mean relative error over the bucket at fit time *)
  e_worst_err : float;  (** worst relative error over the bucket at fit time *)
  e_evals : int;  (** objective evaluations the fit spent on this bucket *)
}

val lookup : regime -> entry
(** The fitted entry for a regime; falls back to the calibrated
    conventions for a regime missing from the checked-in data.
    @raise Invalid_argument if the generated table is malformed. *)

val resolve : conventions:conventions -> qubits_ft:int -> Leqa_fabric.Params.t -> Leqa_fabric.Params.t
(** Replace the four free parameters of [p] according to the
    conventions; fabric dimensions, gate delays, [nc] and topology are
    kept.  [Fitted] buckets by {!regime_of} over [p]'s fabric. *)

val version : string
(** ["leqa/calib/v1"] — the schema of the generated data and of the
    [leqa calibrate] report body. *)

val seed : int
val random_count : int
val rounds : int
val scale : string
(** Derivation of the checked-in tables, as recorded by the generator. *)

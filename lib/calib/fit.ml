module Harness = Leqa_diff.Harness
module Diff = Leqa_diff.Diff
module Calib_tables = Leqa_core.Calib_tables
module Estimator = Leqa_core.Estimator
module Params = Leqa_fabric.Params
module Telemetry = Leqa_util.Telemetry
module Json = Leqa_util.Json

type regime_fit = {
  rf_regime : Calib_tables.regime;
  rf_point : Space.point;
  rf_mean_err : float;
  rf_worst_err : float;
  rf_evals : int;
  rf_cases : int;
}

type t = {
  f_seed : int;
  f_random_count : int;
  f_rounds : int;
  f_scale : float;
  f_corpus_cases : int;
  f_regimes : regime_fit list;
  f_mean_err : float;
  f_worst_err : float;
  f_evals : int;
}

let default_seed = 9
let default_random_count = 16
let default_rounds = 3

(* mean-dominated, with the worst case weighted in so the fit cannot buy
   average accuracy with a fat tail — the 14% outlier is the target *)
let loss (s : Harness.objective_stats) =
  s.Harness.obj_mean +. (0.5 *. s.Harness.obj_worst)

let regime_of_case (tc : Harness.training_case) =
  Calib_tables.regime_of ~qubits_ft:tc.Harness.t_qubits_ft
    ~width:tc.Harness.t_case.Diff.width
    ~height:tc.Harness.t_case.Diff.height

let base_params (tc : Harness.training_case) =
  Params.with_fabric Params.calibrated ~width:tc.Harness.t_case.Diff.width
    ~height:tc.Harness.t_case.Diff.height

let point_json (p : Space.point) =
  Json.Obj
    [
      ("v", Json.Float p.Space.v);
      ("t_move", Json.Float p.Space.t_move);
      ("lg_mult", Json.Float p.Space.lg_mult);
      ("cong_slope", Json.Float p.Space.cong_slope);
    ]

let point_for t regime =
  match
    List.find_opt (fun rf -> rf.rf_regime = regime) t.f_regimes
  with
  | Some rf -> rf.rf_point
  | None -> Space.prior

(* ---- the per-regime descent ----------------------------------------- *)

(* One bucket: three deterministic starts (the calibrated prior, the
   paper default, one seeded log-uniform draw), then [rounds] sweeps of
   the four axes with a log-space pattern search whose bracket halves
   each round.  Everything is ordered and seed-derived, so a given
   (corpus, seed, rounds) always lands on the same point. *)
let fit_regime ~rounds ~rng ~pool ~telemetry ~trace ~regime cases =
  let key = Calib_tables.regime_key regime in
  let evals = ref 0 in
  let score point =
    incr evals;
    Telemetry.count telemetry "calib.eval";
    let stats =
      Harness.objective ~pool ~telemetry
        ~params_for:(fun tc -> Space.place point (base_params tc))
        cases
    in
    trace
      (Json.Obj
         [
           ("event", Json.String "eval");
           ("regime", Json.String key);
           ("point", point_json point);
           ("mean_err", Json.Float stats.Harness.obj_mean);
           ("worst_err", Json.Float stats.Harness.obj_worst);
           ("loss", Json.Float (loss stats));
         ]);
    stats
  in
  let seeded = Space.clamp_point (Space.sample rng) in
  let starts = [ Space.prior; Space.paper_default; seeded ] in
  let best =
    List.fold_left
      (fun best point ->
        match best with
        | Some (bp, _, _) when Space.equal bp point -> best
        | _ ->
          let stats = score point in
          let l = loss stats in
          (match best with
          | Some (_, _, bl) when bl <= l -> best
          | _ -> Some (point, stats, l)))
      None starts
  in
  let best = ref (Option.get best) in
  for round = 1 to rounds do
    Telemetry.count telemetry "calib.round";
    List.iter
      (fun axis ->
        let point, _, _ = !best in
        let x = Space.get point axis in
        let lo, hi = Space.bounds axis in
        (* bracket = the axis's full log range / 2^(round+1): round 1
           probes a quarter of the range either way, round 3 a 16th *)
        let hw = log (hi /. lo) /. float_of_int (1 lsl (round + 1)) in
        List.iter
          (fun delta ->
            let incumbent, _, incumbent_loss = !best in
            let value = Space.clamp axis (x *. exp delta) in
            let candidate = Space.set incumbent axis value in
            if not (Space.equal candidate incumbent) then begin
              let stats = score candidate in
              if loss stats < incumbent_loss then begin
                Telemetry.count telemetry "calib.improved";
                trace
                  (Json.Obj
                     [
                       ("event", Json.String "move");
                       ("regime", Json.String key);
                       ("round", Json.Int round);
                       ("axis", Json.String (Space.axis_name axis));
                       ("point", point_json candidate);
                       ("loss", Json.Float (loss stats));
                     ]);
                best := (candidate, stats, loss stats)
              end
            end)
          [ -.hw; -.hw /. 2.0; hw /. 2.0; hw ])
      Space.axes
  done;
  let point, stats, _ = !best in
  {
    rf_regime = regime;
    rf_point = point;
    rf_mean_err = stats.Harness.obj_mean;
    rf_worst_err = stats.Harness.obj_worst;
    rf_evals = !evals;
    rf_cases = List.length cases;
  }

let fit ?(seed = default_seed) ?(random_count = default_random_count)
    ?(rounds = default_rounds) ?(scale = Harness.default_scale) ?benches
    ?deadline_s ?pool ?(telemetry = Telemetry.noop) ?(trace = fun _ -> ()) ()
    =
  Telemetry.span telemetry "calib.fit" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  let corpus =
    Harness.training_corpus ~scale ?deadline_s ?benches ~random_count ~seed
      ~pool ~telemetry ()
  in
  trace
    (Json.Obj
       [
         ("event", Json.String "corpus");
         ("cases", Json.Int (List.length corpus));
         ("seed", Json.Int seed);
         ("random_count", Json.Int random_count);
         ("rounds", Json.Int rounds);
         ("scale", Json.Float scale);
       ]);
  let master = Leqa_util.Rng.create ~seed in
  let regimes =
    List.map
      (fun regime ->
        (* one independent stream per bucket, split in table order *)
        let rng = Leqa_util.Rng.split master in
        let cases =
          List.filter (fun tc -> regime_of_case tc = regime) corpus
        in
        if cases = [] then
          {
            rf_regime = regime;
            rf_point = Space.prior;
            rf_mean_err = 0.0;
            rf_worst_err = 0.0;
            rf_evals = 0;
            rf_cases = 0;
          }
        else
          fit_regime ~rounds ~rng ~pool ~telemetry ~trace ~regime cases)
      Calib_tables.all_regimes
  in
  let partial =
    {
      f_seed = seed;
      f_random_count = random_count;
      f_rounds = rounds;
      f_scale = scale;
      f_corpus_cases = List.length corpus;
      f_regimes = regimes;
      f_mean_err = 0.0;
      f_worst_err = 0.0;
      f_evals = List.fold_left (fun a rf -> a + rf.rf_evals) 0 regimes;
    }
  in
  (* corpus-wide residual under the fitted tables, for the report *)
  let final =
    if corpus = [] then partial
    else
      let stats =
        Harness.objective ~pool ~telemetry
          ~params_for:(fun tc ->
            Space.place (point_for partial (regime_of_case tc))
              (base_params tc))
          corpus
      in
      {
        partial with
        f_mean_err = stats.Harness.obj_mean;
        f_worst_err = stats.Harness.obj_worst;
      }
  in
  trace
    (Json.Obj
       [
         ("event", Json.String "done");
         ("mean_err", Json.Float final.f_mean_err);
         ("worst_err", Json.Float final.f_worst_err);
         ("evals", Json.Int final.f_evals);
       ]);
  (final, corpus)

(* ---- per-case measurement (ACCURACY.md regeneration) ---------------- *)

type measured = {
  m_label : string;
  m_width : int;
  m_height : int;
  m_crowded : bool;
  m_err : float;
}

let measure ?pool ?(telemetry = Telemetry.noop) ~point_for corpus =
  Telemetry.span telemetry "calib.measure" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  Leqa_util.Pool.map_list_weighted pool
    ~weight:(fun tc -> tc.Harness.t_weight)
    ~f:(fun tc ->
      let regime = regime_of_case tc in
      let params = Space.place (point_for regime) (base_params tc) in
      let b = Estimator.estimate_prepared ~params tc.Harness.t_prepared in
      {
        m_label = tc.Harness.t_case.Diff.label;
        m_width = tc.Harness.t_case.Diff.width;
        m_height = tc.Harness.t_case.Diff.height;
        m_crowded = regime.Calib_tables.crowded;
        m_err =
          Leqa_util.Stats.relative_error ~actual:tc.Harness.t_simulated_us
            ~estimated:b.Estimator.latency_us;
      })
    corpus

let of_tables () =
  let entry_point regime =
    let e = Calib_tables.lookup regime in
    {
      Space.v = e.Calib_tables.e_v;
      t_move = e.Calib_tables.e_t_move;
      lg_mult = e.Calib_tables.e_lg_mult;
      cong_slope = e.Calib_tables.e_cong_slope;
    }
  in
  entry_point

(** The CNOT routing-latency chain of Section 3: Eqs 15-16 (per-qubit
    uncongested latency), Eq 12 (weighted average [d_uncong]), Eq 8
    (congestion scaling [d_q]) and Eq 2 (the final [L_CNOT^avg]). *)

val expected_hamiltonian_length : m:int -> float
(** Eq (15): [E(l_ham,i)] for a qubit of IIG degree [m] — the expected
    shortest Hamiltonian path through [m+1] random points in its
    presence zone.  0 for [m ≤ 1]. *)

val d_uncongested_for : m:int -> v:float -> float
(** Eq (16): [E(l_ham,i) / (v · M_i)], the per-operation uncongested
    routing latency of one qubit.  0 for [m = 0] (no interactions).
    @raise Invalid_argument for non-positive [v]. *)

val d_uncongested : v:float -> Leqa_iig.Iig.t -> float
(** Eq (12): weighted average of [d_uncongested_for] over all qubits,
    weighted by adjacent edge-weight sums.  0 when there are no
    two-qubit operations. *)

val congested_delays :
  ?slope:float -> d_uncong:float -> nc:int -> qmax:int -> unit -> float array
(** Eq (8) for [q = 1 .. qmax]: element [q-1] is [d_q].  [slope]
    (default 1.0) is the fitted congestion slope: it scales the queueing
    excess, [d_q = d_uncong + slope · (d_q^raw − d_uncong)].  At 1.0 the
    result is bit-identical to the paper's formula.
    @raise Invalid_argument on non-positive [slope]. *)

val l_cnot_avg :
  expected_surfaces:float array -> delays:float array -> float
(** Eq (2): [Σ E(S_q)·d_q / Σ E(S_q)] over the truncated range.  0 when
    the total covered surface is zero (no zones, no CNOTs).
    @raise Invalid_argument on array length mismatch. *)

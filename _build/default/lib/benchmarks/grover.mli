(** Grover-search circuits — a second extension family beyond the paper's
    suite.  Each iteration is an oracle (a multi-controlled phase flip on
    the marked pattern) followed by the diffusion operator
    [H^n · X^n · MCZ · X^n · H^n]; both sides are realised with the MCT +
    ancilla machinery of {!Leqa_circuit.Decompose}, so Grover circuits are
    MCT-heavy the way the hwb family is. *)

val circuit : ?iterations:int -> n:int -> marked:int -> unit ->
  Leqa_circuit.Circuit.t
(** [circuit ~n ~marked ()] searches an n-bit space for the bit pattern
    [marked]; [iterations] defaults to ⌊(π/4)·√(2ⁿ)⌋.
    @raise Invalid_argument for [n < 3], out-of-range [marked], or
    non-positive [iterations]. *)

val optimal_iterations : n:int -> int
(** ⌊(π/4)·√(2ⁿ)⌋, at least 1. *)

test/test_core.ml: Alcotest Array Config Coverage Estimator Float Leqa_benchmarks Leqa_circuit Leqa_core Leqa_fabric Leqa_iig Leqa_qodg Leqa_util List Presence_zone Printf Result Routing_latency

lib/qecc/selection.mli: Code Leqa_fabric Leqa_qodg

lib/qspr/placement.mli: Leqa_fabric Leqa_iig

lib/core/coverage.ml: Array Leqa_fabric Leqa_util

open Leqa_queueing

let feq eps = Alcotest.(check (float eps))

let test_mm1_basics () =
  let q = Mm1.make ~lambda:1.0 ~mu:2.0 in
  feq 1e-9 "utilization" 0.5 (Mm1.utilization q);
  feq 1e-9 "L = lambda/(mu-lambda)" 1.0 (Mm1.avg_queue_length q);
  feq 1e-9 "W = L/lambda (Little)" 1.0 (Mm1.avg_waiting_time q)

let test_mm1_stability () =
  Alcotest.check_raises "mu <= lambda"
    (Invalid_argument "Mm1.make: requires mu > lambda (stability)") (fun () ->
      ignore (Mm1.make ~lambda:2.0 ~mu:2.0))

let test_lambda_inversion () =
  (* Eq (10): recover lambda from the observed queue length *)
  let mu = 3.0 in
  List.iter
    (fun lambda ->
      let q = Mm1.make ~lambda ~mu in
      let l = Mm1.avg_queue_length q in
      feq 1e-9 "round trip" lambda (Mm1.lambda_of_queue_length ~queue_length:l ~mu))
    [ 0.5; 1.0; 2.0; 2.9 ]

let test_congestion_delay_uncongested () =
  (* Eq (8): q <= N_c leaves the delay unchanged *)
  let d = 800.0 and nc = 5 in
  for q = 0 to nc do
    feq 1e-9
      (Printf.sprintf "q=%d" q)
      d
      (Mm1.congestion_delay ~nc ~d_uncong:d ~q)
  done

let test_congestion_delay_congested () =
  (* Eq (8): q > N_c scales as (1+q)/N_c *)
  let d = 800.0 and nc = 5 in
  List.iter
    (fun q ->
      feq 1e-9
        (Printf.sprintf "q=%d" q)
        ((1.0 +. float_of_int q) *. d /. float_of_int nc)
        (Mm1.congestion_delay ~nc ~d_uncong:d ~q))
    [ 6; 10; 100 ]

let test_congestion_continuity () =
  (* at q slightly above N_c the congested value is close to d_uncong:
     (1 + Nc + 1)/Nc = 1.4 at Nc = 5 — the model's step is bounded *)
  let d = 100.0 and nc = 5 in
  let at_nc = Mm1.congestion_delay ~nc ~d_uncong:d ~q:nc in
  let above = Mm1.congestion_delay ~nc ~d_uncong:d ~q:(nc + 1) in
  Alcotest.(check bool) "monotone step" true (above >= at_nc);
  Alcotest.(check bool) "step bounded by 2x" true (above <= 2.0 *. at_nc)

let test_little_formula_matches () =
  (* Eq (11) equals the congested branch of Eq (8) *)
  let d = 250.0 and nc = 4 in
  List.iter
    (fun q ->
      feq 1e-9 "W = (1+q)d/Nc"
        (Mm1.waiting_time_little ~nc ~d_uncong:d ~q)
        (Mm1.congestion_delay ~nc ~d_uncong:d ~q))
    [ 5; 8; 50 ]

let test_simulation_matches_theory () =
  (* discrete-event validation of L = λ/(μ−λ) (Figure 5's model) *)
  let rng = Leqa_util.Rng.create ~seed:2024 in
  let lambda = 1.0 and mu = 2.0 in
  let r = Simulate.run ~rng ~lambda ~mu ~horizon:200_000.0 in
  let expected = lambda /. (mu -. lambda) in
  Alcotest.(check bool)
    (Printf.sprintf "L sim %.3f vs theory %.3f" r.Simulate.avg_queue_length expected)
    true
    (abs_float (r.Simulate.avg_queue_length -. expected) < 0.1);
  (* Little: W = L/λ *)
  let w_expected = expected /. lambda in
  Alcotest.(check bool) "W via Little" true
    (abs_float (r.Simulate.avg_sojourn_time -. w_expected) < 0.1)

let test_multi_server_capacity () =
  (* M/M/c with c servers drains faster than M/M/1 at the same per-server mu *)
  let rng1 = Leqa_util.Rng.create ~seed:1 in
  let rng2 = Leqa_util.Rng.create ~seed:1 in
  let single =
    Simulate.run_multi_server ~rng:rng1 ~lambda:1.5 ~mu_per_server:2.0
      ~servers:1 ~horizon:50_000.0
  in
  let multi =
    Simulate.run_multi_server ~rng:rng2 ~lambda:1.5 ~mu_per_server:2.0
      ~servers:5 ~horizon:50_000.0
  in
  Alcotest.(check bool) "more servers, shorter queue" true
    (multi.Simulate.avg_queue_length < single.Simulate.avg_queue_length)

let test_parallel_replications_deterministic () =
  (* same master seed ⇒ identical per-replication results and summary
     statistics regardless of the pool width *)
  let run jobs =
    Leqa_util.Pool.set_default_jobs jobs;
    let results =
      Simulate.run_replications ~seed:99 ~replications:12 ~lambda:1.5
        ~mu_per_server:2.0 ~servers:2 ~horizon:5_000.0 ()
    in
    (results, Simulate.summarize results)
  in
  let results1, summary1 = run 1 in
  let results4, summary4 = run 4 in
  Leqa_util.Pool.set_default_jobs 1;
  Alcotest.(check int) "12 replications" 12 (Array.length results1);
  Array.iteri
    (fun i r ->
      if r <> results4.(i) then Alcotest.failf "replication %d differs" i)
    results1;
  Alcotest.(check bool) "summaries identical" true (summary1 = summary4);
  Alcotest.(check bool) "replications vary among themselves" true
    (results1.(0) <> results1.(1))

let test_replications_summary () =
  let results =
    Simulate.run_replications ~seed:7 ~replications:4 ~lambda:1.0
      ~mu_per_server:2.0 ~servers:1 ~horizon:2_000.0 ()
  in
  let s = Simulate.summarize results in
  Alcotest.(check int) "count" 4 s.Simulate.replications;
  Alcotest.(check bool) "positive sojourn" true (s.Simulate.mean_sojourn_time > 0.0);
  Alcotest.(check bool) "std finite" true (Float.is_finite s.Simulate.std_sojourn_time);
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Simulate.summarize: no replications") (fun () ->
      ignore (Simulate.summarize [||]))

let test_simulation_invalid () =
  let rng = Leqa_util.Rng.create ~seed:1 in
  Alcotest.check_raises "unstable"
    (Invalid_argument "Simulate.run: requires mu > lambda") (fun () ->
      ignore (Simulate.run ~rng ~lambda:2.0 ~mu:1.0 ~horizon:10.0))

let suite =
  [
    Alcotest.test_case "M/M/1 closed forms" `Quick test_mm1_basics;
    Alcotest.test_case "stability check" `Quick test_mm1_stability;
    Alcotest.test_case "Eq-10 lambda inversion" `Quick test_lambda_inversion;
    Alcotest.test_case "Eq-8 uncongested branch" `Quick test_congestion_delay_uncongested;
    Alcotest.test_case "Eq-8 congested branch" `Quick test_congestion_delay_congested;
    Alcotest.test_case "Eq-8 step is bounded" `Quick test_congestion_continuity;
    Alcotest.test_case "Eq-11 Little's formula" `Quick test_little_formula_matches;
    Alcotest.test_case "simulation vs theory" `Slow test_simulation_matches_theory;
    Alcotest.test_case "multi-server beats single" `Slow test_multi_server_capacity;
    Alcotest.test_case "parallel replications deterministic" `Quick
      test_parallel_replications_deterministic;
    Alcotest.test_case "replication summary" `Quick test_replications_summary;
    Alcotest.test_case "simulation input checks" `Quick test_simulation_invalid;
  ]

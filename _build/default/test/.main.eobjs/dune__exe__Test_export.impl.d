test/test_export.ml: Alcotest Critical_path Export Filename Fun Leqa_benchmarks Leqa_circuit Leqa_fabric Leqa_qodg List Qodg String Sys

lib/benchmarks/qft.mli: Leqa_circuit

(** QSPR — the detailed quantum scheduling/placement/routing baseline the
    paper compares LEQA against (reference [20], rebuilt here on the tiled
    architecture of Figure 1).  Expensive but "exact": it simulates every
    qubit movement.  See DESIGN.md for the substitution notes. *)

type config = {
  params : Leqa_fabric.Params.t;
  placement : Placement.strategy;
  routing : Router.mode;
}

val default_config : config
(** Table 1 parameters, [Spread] placement, A* routing. *)

type result = {
  latency_us : float;  (** actual program latency, µs *)
  latency_s : float;  (** same, seconds (Table 2's unit) *)
  stats : Scheduler.stats;
}

val run : ?config:config -> ?trace:Trace.t -> Leqa_qodg.Qodg.t -> result
(** Pass [trace] to record every executed operation (see {!Trace}). *)

val run_circuit :
  ?config:config -> ?trace:Trace.t -> Leqa_circuit.Ft_circuit.t -> result
(** Builds the QODG and runs. *)

open Leqa_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_noop () =
  check_bool "noop is noop" true (Telemetry.is_noop Telemetry.noop);
  check_int "span passes value through" 7
    (Telemetry.span Telemetry.noop "x" (fun () -> 7));
  Telemetry.count Telemetry.noop "a";
  Telemetry.count_n Telemetry.noop "a" 10;
  Telemetry.gauge Telemetry.noop "g" 1.0;
  check_int "noop drops counters" 0 (Telemetry.counter_value Telemetry.noop "a");
  check_bool "noop drops gauges" true
    (Telemetry.gauge_value Telemetry.noop "g" = None);
  check_int "noop records no spans" 0 (List.length (Telemetry.spans Telemetry.noop))

let test_span_nesting () =
  let t = Telemetry.create () in
  check_bool "collecting registry" false (Telemetry.is_noop t);
  let v =
    Telemetry.span t "root" (fun () ->
        let a = Telemetry.span t "a" (fun () -> 1) in
        let b =
          Telemetry.span t "b" (fun () ->
              Telemetry.span t "b.inner" (fun () -> 2))
        in
        a + b)
  in
  check_int "nested result" 3 v;
  let spans = Telemetry.spans t in
  check_int "four spans" 4 (List.length spans);
  let by_name name =
    List.find (fun s -> s.Telemetry.name = name) spans
  in
  let root = by_name "root" and a = by_name "a" in
  let b = by_name "b" and inner = by_name "b.inner" in
  check_int "root has no parent" (-1) root.Telemetry.parent;
  check_int "root is id 0" 0 root.Telemetry.id;
  check_int "a under root" root.Telemetry.id a.Telemetry.parent;
  check_int "b under root" root.Telemetry.id b.Telemetry.parent;
  check_int "inner under b" b.Telemetry.id inner.Telemetry.parent;
  (* ids are assigned in open order *)
  check_bool "open order" true
    (root.Telemetry.id < a.Telemetry.id
    && a.Telemetry.id < b.Telemetry.id
    && b.Telemetry.id < inner.Telemetry.id);
  (* every child's interval sits inside its parent's *)
  List.iter
    (fun s ->
      if s.Telemetry.parent >= 0 then begin
        let p = List.find (fun q -> q.Telemetry.id = s.Telemetry.parent) spans in
        let eps = 1e-6 in
        check_bool
          (Printf.sprintf "%s starts after %s" s.Telemetry.name p.Telemetry.name)
          true
          (s.Telemetry.start_s +. eps >= p.Telemetry.start_s);
        check_bool
          (Printf.sprintf "%s ends before %s" s.Telemetry.name p.Telemetry.name)
          true
          (s.Telemetry.start_s +. s.Telemetry.dur_s
          <= p.Telemetry.start_s +. p.Telemetry.dur_s +. eps)
      end)
    spans

let test_span_exception_safety () =
  let t = Telemetry.create () in
  (try
     Telemetry.span t "outer" (fun () ->
         Telemetry.span t "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let spans = Telemetry.spans t in
  check_int "both spans closed" 2 (List.length spans);
  (* the open stack unwound: a later span is a fresh root *)
  let v = Telemetry.span t "after" (fun () -> ()) in
  ignore v;
  let after =
    List.find (fun s -> s.Telemetry.name = "after") (Telemetry.spans t)
  in
  check_int "stack unwound after raise" (-1) after.Telemetry.parent

let test_counters_and_gauges () =
  let t = Telemetry.create () in
  Telemetry.count t "b.two";
  Telemetry.count t "b.two";
  Telemetry.count_n t "a.one" 5;
  Telemetry.gauge t "g" 1.5;
  Telemetry.gauge t "g" 2.5;
  check_int "count" 2 (Telemetry.counter_value t "b.two");
  check_int "count_n" 5 (Telemetry.counter_value t "a.one");
  check_int "unknown counter" 0 (Telemetry.counter_value t "nope");
  check_bool "gauge last-write-wins" true
    (Telemetry.gauge_value t "g" = Some 2.5);
  (* listing order is sorted by name, so serialization is stable *)
  check_bool "counters sorted" true
    (List.map fst (Telemetry.counters t) = [ "a.one"; "b.two" ])

let test_ambient () =
  Telemetry.uninstall ();
  check_bool "nothing installed" false (Telemetry.ambient_active ());
  Telemetry.ambient_count "dropped";
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect
    ~finally:(fun () -> Telemetry.uninstall ())
    (fun () ->
      check_bool "installed" true (Telemetry.ambient_active ());
      Telemetry.ambient_count "hit";
      Telemetry.ambient_count_n "hit" 2;
      Telemetry.ambient_gauge "load" 0.5;
      check_int "ambient routed to registry" 3 (Telemetry.counter_value t "hit");
      check_bool "ambient gauge" true
        (Telemetry.gauge_value t "load" = Some 0.5));
  check_bool "uninstalled" false (Telemetry.ambient_active ());
  Telemetry.ambient_count "hit";
  check_int "post-uninstall probes dropped" 3 (Telemetry.counter_value t "hit")

let test_json_shape () =
  let t = Telemetry.create () in
  Telemetry.span t "root" (fun () -> Telemetry.count t "c");
  let j = Telemetry.to_json t in
  check_bool "keys in order" true
    (Json.keys j
    = [ "schema_version"; "total_s"; "unattributed_s"; "spans"; "counters";
        "gauges" ]);
  (match Json.member "schema_version" j with
  | Some (Json.String v) -> check_str "trace schema" Telemetry.trace_schema_version v
  | _ -> Alcotest.fail "schema_version missing");
  (* the serialized registry reparses via the Json parser *)
  match Json.of_string (Json.to_string j) with
  | Ok j' -> check_str "round-trip" (Json.to_string j) (Json.to_string j')
  | Error e -> Alcotest.fail e

let test_write_trace () =
  let t = Telemetry.create () in
  Telemetry.span t "root" (fun () -> ());
  let path = Filename.temp_file "leqa_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.write_trace path t;
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Json.of_string text with
      | Ok j ->
        check_bool "has spans" true (Json.member "spans" j <> None)
      | Error e -> Alcotest.fail e)

let test_write_trace_io_error () =
  let t = Telemetry.create () in
  match Telemetry.write_trace "/no/such/dir/trace.json" t with
  | () -> Alcotest.fail "expected Io_error"
  | exception Error.Error (Error.Io_error _) -> ()

(* the acceptance criterion: phase spans on a real estimate cover > 95%
   of the wall time under the root span.  Cold caches and the calibrated
   60x60 fabric make the coverage phase dominate, so the sub-µs gaps
   between contiguous phases stay far below the 5% slack. *)
let test_estimate_span_coverage () =
  let circ =
    match Leqa_circuit.Parser.parse_file "corpus/ok_small.tfc" with
    | Ok c -> c
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  let ft = Leqa_circuit.Decompose.to_ft circ in
  let t = Telemetry.create () in
  Leqa_core.Coverage.clear_caches ();
  let breakdown =
    Telemetry.span t "root" (fun () ->
        Leqa_core.Estimator.estimate_circuit ~telemetry:t
          ~params:Leqa_fabric.Params.calibrated ft)
  in
  check_bool "estimate ran" true (breakdown.Leqa_core.Estimator.latency_s > 0.0);
  let spans = Telemetry.spans t in
  check_bool "has phase spans" true (List.length spans >= 6);
  let root = List.find (fun s -> s.Telemetry.id = 0) spans in
  check_str "root span" "root" root.Telemetry.name;
  let unattributed = Telemetry.unattributed_s t in
  check_bool "unattributed nonnegative" true (unattributed >= -1e-9);
  let frac = unattributed /. Float.max 1e-12 root.Telemetry.dur_s in
  if frac >= 0.05 then
    Alcotest.failf "spans cover only %.1f%% of wall time"
      (100.0 *. (1.0 -. frac));
  (* every phase nests under root or the estimator span: no orphans *)
  List.iter
    (fun s ->
      check_bool (s.Telemetry.name ^ " has a parent") true
        (s.Telemetry.id = 0 || s.Telemetry.parent >= 0))
    spans

let suite =
  [
    Alcotest.test_case "noop" `Quick test_noop;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "ambient sink" `Quick test_ambient;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "write trace" `Quick test_write_trace;
    Alcotest.test_case "write trace io error" `Quick test_write_trace_io_error;
    Alcotest.test_case "estimate span coverage" `Quick
      test_estimate_span_coverage;
  ]

(** Native instruction set of the ion-trap quantum fabric.

    Section 2 of the paper: "Each quantum fabric is natively capable of
    performing a universal set of one and two-qubit instructions (also
    called native quantum instructions). ... Each FT quantum operation can
    be implemented by using a composition of these native quantum
    instructions."  These are the physical primitives the ULB designer
    ({!Designer}) schedules; durations are per-instruction microseconds,
    defaulted to representative trapped-ion values. *)

type kind =
  | Init  (** prepare a fresh physical qubit in |0⟩ *)
  | One_qubit  (** any single-ion rotation *)
  | Two_qubit  (** a two-ion entangling (Mølmer–Sørensen style) gate *)
  | Measure  (** fluorescence readout *)
  | Move  (** shuttle an ion between adjacent trap zones *)
  | Split_merge  (** split or merge an ion chain *)
  | Cool  (** sympathetic recooling after transport *)

type params = {
  t_init : float;
  t_one_qubit : float;
  t_two_qubit : float;
  t_measure : float;
  t_move : float;
  t_split_merge : float;
  t_cool : float;
  lanes : int;
      (** independent interaction zones inside one ULB: native
          instructions on disjoint ions proceed [lanes]-wide *)
}

val default : params
(** Representative trapped-ion timings (µs): slow readout (≈ 490),
    moderately slow two-qubit gates (≈ 10), fast rotations (≈ 1),
    transport ≈ 5 per zone, 2 interaction lanes per ULB. *)

val duration : params -> kind -> float

val validate : params -> (unit, string) result
(** All durations positive and [lanes ≥ 1]. *)

val phase_time : params -> kind -> count:int -> float
(** Time for [count] identical independent instructions executed
    [lanes]-wide: ⌈count/lanes⌉ · duration.  0 for [count = 0].
    @raise Invalid_argument for negative [count]. *)

open Leqa_circuit

(* Pauli-level functional simulation over computational basis states:
   enough to verify that decompositions preserve the classical (reversible)
   action of X/CNOT/Toffoli-style gates on every basis input.  One-qubit
   non-classical FT gates come in compensating pairs inside the Toffoli
   network, so checking the classical action of the network as a whole
   requires full state-vector simulation — done in [test_toffoli_network]
   with a small dense simulator. *)

module Statevector = struct
  type t = { n : int; re : float array; im : float array }

  let create n basis =
    let dim = 1 lsl n in
    let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
    re.(basis) <- 1.0;
    { n; re; im }

  let apply_single state kind q =
    let dim = Array.length state.re in
    let bit = 1 lsl q in
    let isq2 = 1.0 /. sqrt 2.0 in
    for i = 0 to dim - 1 do
      if i land bit = 0 then begin
        let j = i lor bit in
        let re0 = state.re.(i) and im0 = state.im.(i) in
        let re1 = state.re.(j) and im1 = state.im.(j) in
        match kind with
        | Gate.X ->
          state.re.(i) <- re1;
          state.im.(i) <- im1;
          state.re.(j) <- re0;
          state.im.(j) <- im0
        | Gate.Y ->
          (* Y|0> = i|1>, Y|1> = -i|0> *)
          state.re.(i) <- im1;
          state.im.(i) <- -.re1;
          state.re.(j) <- -.im0;
          state.im.(j) <- re0
        | Gate.Z ->
          state.re.(j) <- -.re1;
          state.im.(j) <- -.im1
        | Gate.H ->
          state.re.(i) <- isq2 *. (re0 +. re1);
          state.im.(i) <- isq2 *. (im0 +. im1);
          state.re.(j) <- isq2 *. (re0 -. re1);
          state.im.(j) <- isq2 *. (im0 -. im1)
        | Gate.S ->
          state.re.(j) <- -.im1;
          state.im.(j) <- re1
        | Gate.Sdg ->
          state.re.(j) <- im1;
          state.im.(j) <- -.re1
        | Gate.T ->
          let c = cos (Float.pi /. 4.0) and s = sin (Float.pi /. 4.0) in
          state.re.(j) <- (c *. re1) -. (s *. im1);
          state.im.(j) <- (s *. re1) +. (c *. im1)
        | Gate.Tdg ->
          let c = cos (Float.pi /. 4.0) and s = -.sin (Float.pi /. 4.0) in
          state.re.(j) <- (c *. re1) -. (s *. im1);
          state.im.(j) <- (s *. re1) +. (c *. im1)
      end
    done

  let apply_cnot state ~control ~target =
    let dim = Array.length state.re in
    let cbit = 1 lsl control and tbit = 1 lsl target in
    for i = 0 to dim - 1 do
      if i land cbit <> 0 && i land tbit = 0 then begin
        let j = i lor tbit in
        let re = state.re.(i) and im = state.im.(i) in
        state.re.(i) <- state.re.(j);
        state.im.(i) <- state.im.(j);
        state.re.(j) <- re;
        state.im.(j) <- im
      end
    done

  let apply_ft state = function
    | Ft_gate.Single (k, q) -> apply_single state k q
    | Ft_gate.Cnot { control; target } -> apply_cnot state ~control ~target

  let amplitude state basis = (state.re.(basis), state.im.(basis))
end

let test_toffoli_network () =
  (* the 15-gate network must act as a Toffoli on all 8 basis states *)
  for basis = 0 to 7 do
    let state = Statevector.create 3 basis in
    List.iter
      (Statevector.apply_ft state)
      (Decompose.toffoli_ft_network ~c1:0 ~c2:1 ~target:2);
    let expected =
      if basis land 1 <> 0 && basis land 2 <> 0 then basis lxor 4 else basis
    in
    let re, im = Statevector.amplitude state expected in
    let magnitude = sqrt ((re *. re) +. (im *. im)) in
    if abs_float (magnitude -. 1.0) > 1e-9 then
      Alcotest.failf "basis %d: |amp(%d)| = %.6f" basis expected magnitude
  done

let test_toffoli_network_gate_census () =
  let network = Decompose.toffoli_ft_network ~c1:0 ~c2:1 ~target:2 in
  Alcotest.(check int) "15 gates" 15 (List.length network);
  let count p = List.length (List.filter p network) in
  Alcotest.(check int) "6 CNOT" 6
    (count (function Ft_gate.Cnot _ -> true | _ -> false));
  Alcotest.(check int) "2 H" 2
    (count (function Ft_gate.Single (Gate.H, _) -> true | _ -> false));
  Alcotest.(check int) "7 T-type" 7
    (count (function
      | Ft_gate.Single ((Gate.T | Gate.Tdg), _) -> true
      | _ -> false))

(* Classical simulation of logical circuits on bit vectors. *)
let run_classical circ input =
  let bits = Array.copy input in
  Circuit.iter
    (fun g ->
      match g with
      | Gate.Single (Gate.X, q) -> bits.(q) <- not bits.(q)
      | Gate.Single (_, _) -> ()
      | Gate.Cnot { control; target } ->
        if bits.(control) then bits.(target) <- not bits.(target)
      | Gate.Toffoli { c1; c2; target } ->
        if bits.(c1) && bits.(c2) then bits.(target) <- not bits.(target)
      | Gate.Fredkin { control; t1; t2 } ->
        if bits.(control) then begin
          let tmp = bits.(t1) in
          bits.(t1) <- bits.(t2);
          bits.(t2) <- tmp
        end
      | Gate.Mct { controls; target } ->
        if List.for_all (fun c -> bits.(c)) controls then
          bits.(target) <- not bits.(target)
      | Gate.Mcf { controls; t1; t2 } ->
        if List.for_all (fun c -> bits.(c)) controls then begin
          let tmp = bits.(t1) in
          bits.(t1) <- bits.(t2);
          bits.(t2) <- tmp
        end)
    circ;
  bits

let test_fredkin_decomposition () =
  (* CNOT-Toffoli-CNOT equals a controlled swap on all 8 inputs *)
  for basis = 0 to 7 do
    let input = Array.init 3 (fun i -> basis land (1 lsl i) <> 0) in
    let direct =
      run_classical
        (Circuit.of_gates [ Gate.Fredkin { control = 0; t1 = 1; t2 = 2 } ])
        input
    in
    let decomposed =
      run_classical
        (Circuit.of_gates (Decompose.fredkin_to_toffoli ~control:0 ~t1:1 ~t2:2))
        input
    in
    Alcotest.(check (array bool)) (Printf.sprintf "basis %d" basis) direct
      decomposed
  done

let test_mct_decomposition_semantics () =
  (* n-controlled NOT with ancillas: check every input over the controls,
     and that ancillas are returned clean *)
  List.iter
    (fun n_controls ->
      let controls = List.init n_controls (fun i -> i) in
      let target = n_controls in
      let next = ref (n_controls + 1) in
      let fresh_ancilla () =
        let a = !next in
        incr next;
        a
      in
      let gates = Decompose.mct_to_toffoli ~controls ~target ~fresh_ancilla in
      let total_wires = !next in
      for mask = 0 to (1 lsl n_controls) - 1 do
        let input = Array.make total_wires false in
        List.iteri (fun i c -> input.(c) <- mask land (1 lsl i) <> 0) controls;
        let output = run_classical (Circuit.of_gates gates) input in
        let all_on = mask = (1 lsl n_controls) - 1 in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d mask=%d target" n_controls mask)
          all_on output.(target);
        for a = n_controls + 1 to total_wires - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "n=%d mask=%d ancilla %d clean" n_controls mask a)
            false output.(a)
        done
      done)
    [ 3; 4; 5 ]

let test_mct_toffoli_count () =
  List.iter
    (fun n ->
      let controls = List.init n (fun i -> i) in
      let next = ref (n + 1) in
      let fresh_ancilla () =
        let a = !next in
        incr next;
        a
      in
      let gates =
        Decompose.mct_to_toffoli ~controls ~target:n ~fresh_ancilla
      in
      Alcotest.(check int)
        (Printf.sprintf "2n-3 toffolis at n=%d" n)
        ((2 * n) - 3)
        (List.length gates);
      Alcotest.(check int)
        (Printf.sprintf "n-2 ancillas at n=%d" n)
        (n - 2)
        (!next - n - 1))
    [ 3; 4; 6; 10 ]

let test_mct_requires_three () =
  Alcotest.check_raises "2 controls"
    (Invalid_argument "Decompose.mct_to_toffoli: needs >= 3 controls")
    (fun () ->
      ignore
        (Decompose.mct_to_toffoli ~controls:[ 0; 1 ] ~target:2
           ~fresh_ancilla:(fun () -> 3)))

let test_to_ft_overhead_accounting () =
  let check g =
    let circ = Circuit.of_gates [ g ] in
    let ft = Decompose.to_ft circ in
    Alcotest.(check int)
      (Gate.to_string g)
      (Decompose.ft_gate_overhead g)
      (Ft_circuit.num_gates ft)
  in
  check (Gate.Single (Gate.H, 0));
  check (Gate.Cnot { control = 0; target = 1 });
  check (Gate.Toffoli { c1 = 0; c2 = 1; target = 2 });
  check (Gate.Fredkin { control = 0; t1 = 1; t2 = 2 });
  check (Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 });
  check (Gate.Mct { controls = [ 0; 1; 2; 3; 4 ]; target = 5 });
  check (Gate.Mcf { controls = [ 0; 1 ]; t1 = 2; t2 = 3 })

let test_to_ft_no_ancilla_sharing () =
  (* two 4-controlled MCTs must allocate disjoint ancilla wires (the paper:
     "no ancillary sharing is performed among the decomposed gates") *)
  let circ =
    Circuit.of_gates ~num_qubits:5
      Gate.
        [
          Mct { controls = [ 0; 1; 2; 3 ]; target = 4 };
          Mct { controls = [ 0; 1; 2; 3 ]; target = 4 };
        ]
  in
  let ft = Decompose.to_ft circ in
  (* each 4-MCT needs 2 ancillas: 5 original + 4 fresh wires in total *)
  Alcotest.(check int) "wires" 9 (Leqa_circuit.Ft_circuit.num_qubits ft)

let test_to_ft_preserves_ft_gates () =
  let circ =
    Circuit.of_gates
      Gate.[ Single (Tdg, 0); Cnot { control = 1; target = 0 } ]
  in
  let ft = Decompose.to_ft circ in
  Alcotest.(check int) "unchanged" 2 (Ft_circuit.num_gates ft)

let suite =
  [
    Alcotest.test_case "Toffoli network is a Toffoli" `Quick test_toffoli_network;
    Alcotest.test_case "Toffoli network gate census" `Quick
      test_toffoli_network_gate_census;
    Alcotest.test_case "Fredkin decomposition" `Quick test_fredkin_decomposition;
    Alcotest.test_case "MCT semantics + clean ancillas" `Quick
      test_mct_decomposition_semantics;
    Alcotest.test_case "MCT Toffoli/ancilla counts" `Quick test_mct_toffoli_count;
    Alcotest.test_case "MCT minimum arity" `Quick test_mct_requires_three;
    Alcotest.test_case "per-gate FT overhead" `Quick test_to_ft_overhead_accounting;
    Alcotest.test_case "no ancilla sharing" `Quick test_to_ft_no_ancilla_sharing;
    Alcotest.test_case "FT gates pass through" `Quick test_to_ft_preserves_ft_gates;
  ]

(** Instruction-level microcode for fault-tolerant operations on a ULB.

    {!Designer} prices FT operations with closed-form phase arithmetic;
    this module builds the actual native-instruction programs and
    schedules them under the ULB's real resource constraints — each
    physical qubit is exclusive, and at most [lanes] instructions run
    concurrently.  The paper describes the fabric-designer tool as
    producing "exact results"; the scheduler is that exactness, and the
    tests check the closed forms against it. *)

type instruction = {
  kind : Native.kind;
  operands : int list;
      (** physical-qubit ids; instructions with overlapping operands are
          serialised by the scheduler *)
}

type task = {
  id : int;
  instruction : instruction;
  deps : int list;  (** task ids that must finish first *)
}

type schedule = {
  tasks : task array;
  start_times : float array;
  finish_times : float array;
  makespan : float;
}

(** {2 Program builders}

    Physical-qubit numbering: data block A = 0..6, data block B = 7..13,
    syndrome ancillas and magic-state qubits from 20 upward. *)

val transversal_1q : unit -> task list
(** 7 independent one-qubit rotations on block A. *)

val syndrome_extraction : rounds:int -> task list
(** [rounds] repetitions of extracting all 6 Steane stabilizers of block
    A (ancilla init + basis change + 4 entangling gates + measurement per
    stabilizer), rounds strictly ordered, followed by the transversal
    corrective rotation.  @raise Invalid_argument for [rounds < 1]. *)

val transversal_cnot : unit -> task list
(** Pairwise align blocks A and B (split, shuttle, entangle, recool per
    pair). *)

val magic_state_t : rounds:int -> task list
(** The full T-gate protocol: encode a magic block, verify it, CNOT it
    into the data, measure, fix up. *)

(** {2 Scheduling} *)

val schedule : Native.params -> task list -> schedule
(** Greedy list scheduling in dependency order: a task starts when its
    dependencies have finished, all its operand qubits are free, and a
    lane is available.  @raise Invalid_argument on malformed dependencies
    (forward references) or invalid native parameters. *)

val ft_op_makespan :
  Native.params -> rounds:int -> [ `H | `T | `S | `Pauli | `Cnot ] -> float
(** Gate program + error-correction phase, scheduled end to end — the
    instruction-exact counterpart of {!Designer.design}'s totals. *)

val utilization : schedule -> lanes:int -> float
(** Busy lane-time divided by [lanes × makespan] — how full the ULB's
    interaction zones run. *)

lib/benchmarks/hwb.mli: Leqa_circuit

lib/iig/iig.ml: Array Format Hashtbl Leqa_circuit Leqa_qodg List

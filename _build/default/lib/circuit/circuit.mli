(** A reversible circuit: an ordered gate list over a fixed wire count.

    The builder grows the wire count automatically when a gate touches a
    fresh index (decompositions allocate ancilla wires this way). *)

type t

val create : ?num_qubits:int -> unit -> t
(** Empty circuit; [num_qubits] pre-declares wires (default 0). *)

val add : t -> Gate.t -> unit
(** Append a gate.  @raise Invalid_argument if {!Gate.validate} fails. *)

val add_all : t -> Gate.t list -> unit

val num_qubits : t -> int

val num_gates : t -> int

val gate : t -> int -> Gate.t
(** [gate c i] is the i-th gate in program order. *)

val gates : t -> Gate.t array
(** Copy of the gate sequence. *)

val iter : (Gate.t -> unit) -> t -> unit

val iteri : (int -> Gate.t -> unit) -> t -> unit

val fold : ('a -> Gate.t -> 'a) -> 'a -> t -> 'a

val of_gates : ?num_qubits:int -> Gate.t list -> t

type counts = {
  singles : int;
  cnots : int;
  toffolis : int;
  fredkins : int;
  mcts : int;
  mcfs : int;
}

val counts : t -> counts

val two_qubit_pairs : t -> (int * int) list
(** For each CNOT, its (control, target) pair in program order — the raw
    material of the interaction intensity graph. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: wires, gates, per-kind counts. *)

lib/core/coverage.mli: Leqa_fabric

lib/qodg/export.ml: Buffer Dag Leqa_circuit List Printf Qodg String

lib/fabric/params.ml: Format Leqa_circuit

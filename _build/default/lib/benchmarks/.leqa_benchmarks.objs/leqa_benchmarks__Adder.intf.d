lib/benchmarks/adder.mli: Leqa_circuit

lib/qodg/qodg.ml: Array Dag Format Leqa_circuit List

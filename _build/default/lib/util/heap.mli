(** Imperative binary min-heap, ordered by a caller-supplied priority.

    Used as the event queue of the QSPR discrete-event simulator and by the
    routing layer.  Priorities are [float] (simulation timestamps); ties are
    broken by insertion order so simulations are deterministic. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** [add h ~priority x] inserts [x]. O(log n). *)

val min_priority : 'a t -> float option
(** Priority of the minimum element, if any. O(1). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. O(log n). *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Drains a copy of the heap in priority order (for tests). *)

(* Classic Hashtbl + doubly-linked recency list, one mutex around both.
   The list head is most-recently-used; eviction pops the tail.  Probe
   counters live behind the same mutex, so stats are exact even under
   concurrent domains.

   The public cache is an array of such shards selected by key hash:
   with [shards = 1] (the default) behavior is exactly the classic
   single-lock LRU; with more, concurrent domains contend only when
   they touch the same shard, so the hot server path scales.  Recency
   (and therefore eviction) is tracked per shard. *)

type stats = { hits : int; misses : int; evictions : int; poisoned : int }

module Shard = struct
  type ('k, 'v) node = {
    key : 'k;
    mutable value : 'v;
    mutable prev : ('k, 'v) node option;  (* toward MRU *)
    mutable next : ('k, 'v) node option;  (* toward LRU *)
  }

  type ('k, 'v) t = {
    name : string;
    cap : int;
    mutex : Mutex.t;
    table : ('k, ('k, 'v) node) Hashtbl.t;
    mutable head : ('k, 'v) node option;
    mutable tail : ('k, 'v) node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable poisoned : int;
  }

  let create ~name ~capacity =
    {
      name;
      cap = capacity;
      mutex = Mutex.create ();
      table = Hashtbl.create (min capacity 64);
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      poisoned = 0;
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let length t = locked t (fun () -> Hashtbl.length t.table)

  let probe t event =
    Telemetry.ambient_count (Printf.sprintf "cache.%s.%s" t.name event)

  (* list surgery: callers hold the mutex *)

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    node.prev <- None;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let touch t node =
    match t.head with
    | Some h when h == node -> ()
    | _ ->
      unlink t node;
      push_front t node

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1

  let find t key =
    let result =
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
            touch t node;
            t.hits <- t.hits + 1;
            Some node.value
          | None ->
            t.misses <- t.misses + 1;
            None)
    in
    probe t (match result with None -> "miss" | Some _ -> "hit");
    result

  let put t key value =
    let evicted =
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
            node.value <- value;
            touch t node;
            false
          | None ->
            let full = Hashtbl.length t.table >= t.cap in
            if full then evict_lru t;
            let node = { key; value; prev = None; next = None } in
            Hashtbl.replace t.table key node;
            push_front t node;
            full)
    in
    if evicted then probe t "evict"

  let remove t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some node ->
          unlink t node;
          Hashtbl.remove t.table key)

  let find_or_compute ?(validate = fun _ -> true) t key thunk =
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node when validate node.value ->
            touch t node;
            t.hits <- t.hits + 1;
            `Hit node.value
          | Some node ->
            (* poisoned: drop it and fall through to a recompute *)
            unlink t node;
            Hashtbl.remove t.table key;
            t.poisoned <- t.poisoned + 1;
            t.misses <- t.misses + 1;
            `Poisoned
          | None ->
            t.misses <- t.misses + 1;
            `Miss)
    in
    match cached with
    | `Hit v ->
      probe t "hit";
      v
    | (`Miss | `Poisoned) as outcome ->
      if outcome = `Poisoned then probe t "poisoned";
      probe t "miss";
      let v = thunk () in
      if validate v then put t key v;
      v

  let clear t =
    locked t (fun () ->
        Hashtbl.reset t.table;
        t.head <- None;
        t.tail <- None)

  let stats t =
    locked t (fun () ->
        {
          hits = t.hits;
          misses = t.misses;
          evictions = t.evictions;
          poisoned = t.poisoned;
        })
end

type ('k, 'v) t = { cap : int; shards : ('k, 'v) Shard.t array }

let create ?(shards = 1) ~name ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  if shards < 1 then invalid_arg "Lru.create: shards must be >= 1";
  (* never hand a shard a zero capacity; extra capacity from the split
     goes to the low shards *)
  let shards = min shards capacity in
  let base = capacity / shards and rem = capacity mod shards in
  {
    cap = capacity;
    shards =
      Array.init shards (fun i ->
          Shard.create ~name ~capacity:(base + if i < rem then 1 else 0));
  }

let shard t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let capacity t = t.cap
let length t = Array.fold_left (fun n s -> n + Shard.length s) 0 t.shards
let find t key = Shard.find (shard t key) key
let put t key value = Shard.put (shard t key) key value
let remove t key = Shard.remove (shard t key) key

let find_or_compute ?validate t key thunk =
  Shard.find_or_compute ?validate (shard t key) key thunk

let clear t = Array.iter Shard.clear t.shards

let stats t =
  Array.fold_left
    (fun acc s ->
      let st = Shard.stats s in
      {
        hits = acc.hits + st.hits;
        misses = acc.misses + st.misses;
        evictions = acc.evictions + st.evictions;
        poisoned = acc.poisoned + st.poisoned;
      })
    { hits = 0; misses = 0; evictions = 0; poisoned = 0 }
    t.shards

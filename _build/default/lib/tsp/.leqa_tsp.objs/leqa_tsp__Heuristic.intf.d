lib/tsp/heuristic.mli: Leqa_util

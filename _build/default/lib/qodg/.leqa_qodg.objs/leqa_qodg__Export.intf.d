lib/qodg/export.mli: Qodg

(* End-to-end gate for the estimation service (`leqa serve`):

   A. parity    — 50 NDJSON requests round-tripped through a stdio
                  server; every report must be byte-identical to the
                  one-shot CLI's --format json output once wall-clock
                  fields are stripped, and repeats must come back as
                  cache hits.
   B. soak      — 1000 requests through one server, stdin closed after
                  the last write (EOF drain): exactly 1000 ok responses,
                  ids in order, nothing dropped, no overload errors.
   C. overload  — --queue 2 --batch 1 --reject-overflow under a flood:
                  every request is answered, some with the typed
                  server-overload error, and ok responses still happen.
   D. SIGTERM   — a drain requested mid-stream: the in-flight request
                  completes, later requests get server-draining, and
                  the server exits cleanly.

   Usage: serve_smoke <path-to-leqa-cli> <corpus-dir> *)

module Json = Leqa_util.Json

let cli = ref ""
let corpus = ref ""
let failures = ref 0
let checks = ref 0

let check name ok detail =
  incr checks;
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n     %s\n%!" name detail
  end

(* ---- helpers -------------------------------------------------------- *)

let volatile =
  [ "runtime_s"; "qspr_runtime_s"; "leqa_runtime_s"; "mapper_runtime_s";
    "speedup"; "telemetry" ]

(* strip the wall-clock fields a cached or re-run report may not repeat *)
let rec normalize = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k volatile then None else Some (k, normalize v))
         fields)
  | Json.List items -> Json.List (List.map normalize items)
  | scalar -> scalar

let parse_line name line =
  match Json.of_string line with
  | Ok j -> Some j
  | Error e ->
    check (name ^ " parses") false (e ^ ": " ^ line);
    None

let member_string key j =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let error_kind resp =
  match Json.member "error" resp with
  | Some err -> member_string "error" err
  | None -> None

let is_ok resp = Json.member "ok" resp = Some (Json.Bool true)

(* spawn `leqa serve <extra>` with piped stdio; stderr goes to /dev/null *)
let spawn_server extra =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  (* cloexec: the child must not inherit our pipe ends, or it holds a
     write end of its own stdin open and never sees EOF *)
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  Unix.clear_close_on_exec in_read;
  Unix.clear_close_on_exec out_write;
  let pid =
    Unix.create_process !cli
      (Array.of_list (("leqa" :: "serve" :: extra)))
      in_read out_write devnull
  in
  Unix.close devnull;
  Unix.close in_read;
  Unix.close out_write;
  let oc = Unix.out_channel_of_descr in_write in
  let ic = Unix.in_channel_of_descr out_read in
  (pid, ic, oc)

let wait_exit name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> check (name ^ ": clean exit") true ""
  | _, Unix.WEXITED c ->
    check (name ^ ": clean exit") false (Printf.sprintf "exit %d" c)
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
    check (name ^ ": clean exit") false (Printf.sprintf "signal %d" s)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let out_file = Filename.temp_file "leqa_serve" ".out"

let run_cli args =
  let cmd =
    Printf.sprintf "%s %s >%s 2>/dev/null"
      (Filename.quote !cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out_file)
  in
  let code = Sys.command cmd in
  let ic = open_in out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  (code, out)

(* ---- part A: byte parity with the one-shot CLI ---------------------- *)

(* (params-JSON fragment, method, equivalent one-shot argv) *)
let parity_cases ok_file =
  let est bench width terms =
    ( Printf.sprintf "{\"bench\":%S,\"width\":%d,\"terms\":%d}" bench width
        terms,
      "estimate",
      [ "estimate"; "-b"; bench; "--width"; string_of_int width; "--terms";
        string_of_int terms ] )
  in
  [
    est "qft:4" 60 20;
    est "qft:5" 60 20;
    est "qft:6" 40 20;
    est "qft-adder:4" 60 20;
    est "grover:3" 60 12;
    ( Printf.sprintf "{\"file\":%S}" ok_file,
      "estimate",
      [ "estimate"; "-f"; ok_file ] );
    ( Printf.sprintf "{\"file\":%S,\"deadline_s\":30.5}" ok_file,
      "compare",
      [ "compare"; "-f"; ok_file; "--timeout"; "30.5" ] );
    ( "{\"bench\":\"qft:5\",\"sizes\":[10,20,30]}",
      "sweep-fabric",
      [ "sweep-fabric"; "-b"; "qft:5"; "--sizes"; "10,20,30" ] );
    ( Printf.sprintf "{\"file\":%S,\"sizes\":[10,20]}" ok_file,
      "sweep-fabric",
      [ "sweep-fabric"; "-f"; ok_file; "--sizes"; "10,20" ] );
    ("{}", "version", [ "version" ]);
  ]

let part_a ok_file =
  let cases = parity_cases ok_file in
  (* 5 passes over 10 cases = 50 requests; passes 2..5 hit the cache *)
  let passes = 5 in
  let requests =
    List.concat
      (List.init passes (fun pass ->
           List.mapi
             (fun i (params, method_, _) ->
               Printf.sprintf
                 "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":%S,\"params\":%s}"
                 ((pass * List.length cases) + i)
                 method_ params)
             cases))
  in
  check "part A: 50 requests built" (List.length requests = 50)
    (string_of_int (List.length requests));
  let pid, ic, oc = spawn_server [] in
  List.iter (send oc) requests;
  close_out oc;
  let responses = ref [] in
  (try
     while true do
       responses := input_line ic :: !responses
     done
   with End_of_file -> ());
  close_in ic;
  let responses = List.rev !responses in
  check "part A: one response per request"
    (List.length responses = List.length requests)
    (Printf.sprintf "%d responses" (List.length responses));
  (* one-shot outputs, computed once per distinct case *)
  let oneshot =
    List.map
      (fun (_, _, argv) ->
        let code, out = run_cli (argv @ [ "--format"; "json" ]) in
        if code <> 0 then None
        else
          match Json.of_string (String.trim out) with
          | Ok j -> Some (Json.to_string (normalize j))
          | Error _ -> None)
      cases
  in
  let n_cases = List.length cases in
  let hits = ref 0 in
  List.iteri
    (fun idx line ->
      let case = idx mod n_cases in
      let name = Printf.sprintf "part A: request %02d" idx in
      match parse_line name line with
      | None -> ()
      | Some resp ->
        check (name ^ " ok") (is_ok resp) line;
        (match Json.member "id" resp with
        | Some (Json.Int id) when id = idx -> ()
        | _ -> check (name ^ " id in order") false line);
        if member_string "cache" resp = Some "hit" then incr hits;
        (match (Json.member "report" resp, List.nth oneshot case) with
        | Some report, Some expected ->
          let got = Json.to_string (normalize report) in
          check (name ^ " byte parity") (got = expected)
            (Printf.sprintf "served:   %s\n     one-shot: %s"
               (String.sub got 0 (min 300 (String.length got)))
               (String.sub expected 0 (min 300 (String.length expected))))
        | None, _ -> check (name ^ " has report") false line
        | _, None -> check (name ^ " one-shot baseline ran") false "CLI failed"))
    responses;
  (* version answers are generated, not cached; every estimation method
     must hit on all repeat passes *)
  let cacheable =
    List.length (List.filter (fun (_, m, _) -> m <> "version") cases)
  in
  check "part A: repeats were cache hits"
    (!hits >= (passes - 1) * cacheable)
    (Printf.sprintf "%d hits, expected %d" !hits ((passes - 1) * cacheable));
  wait_exit "part A" pid

(* ---- part B: 1000-request soak, EOF drain --------------------------- *)

let part_b () =
  let n = 1000 in
  let pid, ic, oc = spawn_server [] in
  (* a writer domain keeps the pipe full while we read: no deadlock on
     either side's buffer *)
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          let line =
            if i mod 5 = 0 then
              Printf.sprintf
                "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"estimate\",\"params\":{\"bench\":\"qft:4\"}}"
                i
            else
              Printf.sprintf
                "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"ping\"}"
                i
          in
          send oc line
        done;
        close_out oc)
  in
  let ok_count = ref 0 in
  let rejected = ref 0 in
  let in_order = ref true in
  let seen = ref 0 in
  (try
     while true do
       let line = input_line ic in
       (match parse_line "part B: response" line with
       | None -> ()
       | Some resp ->
         if is_ok resp then incr ok_count
         else begin
           match error_kind resp with
           | Some ("server-overload" | "server-draining") -> incr rejected
           | _ -> ()
         end;
         (match Json.member "id" resp with
         | Some (Json.Int id) -> if id <> !seen then in_order := false
         | _ -> in_order := false));
       incr seen
     done
   with End_of_file -> ());
  Domain.join writer;
  close_in ic;
  check "part B: every request answered" (!seen = n)
    (Printf.sprintf "%d of %d" !seen n);
  check "part B: zero dropped or rejected in-flight"
    (!ok_count = n && !rejected = 0)
    (Printf.sprintf "%d ok, %d rejected" !ok_count !rejected);
  check "part B: responses in request order" !in_order "";
  wait_exit "part B" pid

(* ---- part C: bounded queue with explicit overflow ------------------- *)

let part_c () =
  let n = 60 in
  let pid, ic, oc =
    spawn_server [ "--queue"; "2"; "--batch"; "1"; "--reject-overflow" ]
  in
  (* a burst far faster than dispatch: the reader must shed load with
     typed overload errors, never by dropping requests silently *)
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          send oc
            (Printf.sprintf
               "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"estimate\",\"params\":{\"bench\":\"grover:4\",\"width\":%d}}"
               i (30 + i))
        done;
        close_out oc)
  in
  let ok_count = ref 0 in
  let overload = ref 0 in
  let other = ref 0 in
  let seen = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr seen;
       match parse_line "part C: response" line with
       | None -> ()
       | Some resp ->
         if is_ok resp then incr ok_count
         else if error_kind resp = Some "server-overload" then incr overload
         else incr other
     done
   with End_of_file -> ());
  Domain.join writer;
  close_in ic;
  check "part C: every request answered" (!seen = n)
    (Printf.sprintf "%d of %d" !seen n);
  check "part C: load was shed with typed overload errors" (!overload > 0)
    (Printf.sprintf "%d ok, %d overload, %d other" !ok_count !overload !other);
  check "part C: work still completed" (!ok_count > 0)
    (Printf.sprintf "%d ok" !ok_count);
  check "part C: no untyped failures" (!other = 0)
    (Printf.sprintf "%d other" !other);
  wait_exit "part C" pid

(* ---- part D: graceful drain on SIGTERM ------------------------------ *)

let part_d () =
  let pid, ic, oc = spawn_server [] in
  (* an in-flight request that outlives the signal *)
  send oc
    "{\"schema_version\":\"leqa/rpc/v1\",\"id\":0,\"method\":\"estimate\",\"params\":{\"bench\":\"qft-adder:8\"}}";
  Unix.sleepf 0.05;
  Unix.kill pid Sys.sigterm;
  (* give the ticker time to promote the drain flag, then keep talking *)
  Unix.sleepf 0.5;
  let late = 5 in
  for i = 1 to late do
    send oc
      (Printf.sprintf
         "{\"schema_version\":\"leqa/rpc/v1\",\"id\":%d,\"method\":\"ping\"}" i)
  done;
  close_out oc;
  let responses = ref [] in
  (try
     while true do
       responses := input_line ic :: !responses
     done
   with End_of_file -> ());
  close_in ic;
  let responses = List.rev !responses in
  check "part D: every request answered"
    (List.length responses = late + 1)
    (Printf.sprintf "%d responses" (List.length responses));
  (match responses with
  | first :: rest ->
    (match parse_line "part D: in-flight response" first with
    | Some resp ->
      check "part D: in-flight request completed"
        (is_ok resp && Json.member "id" resp = Some (Json.Int 0))
        first
    | None -> ());
    List.iteri
      (fun i line ->
        match parse_line "part D: late response" line with
        | Some resp ->
          check
            (Printf.sprintf "part D: post-drain request %d rejected" (i + 1))
            (error_kind resp = Some "server-draining")
            line
        | None -> ())
      rest
  | [] -> ());
  wait_exit "part D" pid

let () =
  (* the smoke drives servers over pipes; a server exiting while we
     still hold the write end must not kill the harness *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match Sys.argv with
  | [| _; c; d |] ->
    cli := c;
    corpus := d
  | _ ->
    prerr_endline "usage: serve_smoke <leqa-cli> <corpus-dir>";
    exit 2);
  let ok_file = Filename.concat !corpus "ok_small.tfc" in
  part_a ok_file;
  part_b ();
  part_c ();
  part_d ();
  Sys.remove out_file;
  Printf.printf "\n%d checks, %d failures\n%!" !checks !failures;
  if !failures > 0 then exit 1

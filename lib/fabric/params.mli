(** Physical parameters of the tiled quantum architecture — Table 1 of the
    paper.  All delays are in microseconds.

    The defaults are the paper's ion-trap fabric with the [[7,1,3]] Steane
    code: non-transversal T/T† cost more than the transversal gates. *)

type topology = Grid | Torus
(** Channel topology: the paper's open 2-D grid, or an extension where
    the routing channels wrap around (torus).  On a torus Eq (5) has no
    boundary term — every ULB is covered with the same probability. *)

type t = {
  d_h : float;  (** Hadamard ULB delay *)
  d_t : float;  (** T and T† delay (non-transversal in Steane) *)
  d_s : float;  (** S and S† delay *)
  d_pauli : float;  (** X, Y, Z delay *)
  d_cnot : float;  (** CNOT ULB delay *)
  nc : int;  (** routing-channel capacity N_c *)
  v : float;  (** qubit speed through channels (ULB lengths / µs) *)
  width : int;  (** fabric width a, in ULBs *)
  height : int;  (** fabric height b, in ULBs *)
  t_move : float;  (** T_move: one neighborhood hop, µs *)
  lg_mult : float;
      (** multiplier on the empirical one-qubit routing latency:
          [L_g^avg = lg_mult · 2 · T_move].  1.0 reproduces the paper's
          convention exactly; the calibration subsystem fits it per
          fabric regime (DESIGN.md §13). *)
  cong_slope : float;
      (** congestion slope: scales the M/M/1 queueing *excess* over the
          uncongested latency, [d_q = d_uncong + cong_slope · (d_q^raw −
          d_uncong)].  1.0 is bit-exactly the paper's Eq (8); fitted per
          regime like [lg_mult]. *)
  topology : topology;
}

val default : t
(** Table 1: d_H = 5440, d_T = 10940, d_{X,Y,Z} = 5240, d_CNOT = 4930,
    N_c = 5, v = 0.001, 60 × 60 fabric, T_move = 100. *)

val calibrated : t
(** [default] with [v = 0.005].  Section 3.2 of the paper: "This parameter
    also can be used for tuning the LEQA with different quantum mappers."
    The paper's v = 0.001 was tuned against its (closed-source) QSPR; this
    value is the one-shot global calibration against this repository's
    QSPR mapper (see EXPERIMENTS.md), used by the Table 2/3 harness. *)

val area : t -> int
(** A = a · b. *)

val gate_delay : t -> Leqa_circuit.Ft_gate.t -> float
(** ULB execution delay of an FT operation (no routing). *)

val single_delay : t -> Leqa_circuit.Ft_gate.single_kind -> float

val l_single_avg : t -> float
(** [L_g^avg = lg_mult · 2 · T_move], the empirical one-qubit routing
    latency (the paper's [2 · T_move] when [lg_mult = 1]). *)

val with_fabric : t -> width:int -> height:int -> t
(** @raise Invalid_argument on non-positive dimensions. *)

val scale_qecc : t -> factor:float -> t
(** Scale every gate delay and [t_move] by [factor] — a coarse model of
    switching to a heavier / lighter error-correction code (the QECC
    design-space exploration motivated in the introduction). *)

val validate : t -> (unit, Leqa_util.Error.t) result
(** [Ok ()] for a physically meaningful parameter set; otherwise a
    [Fabric_error] naming the offending field.  Non-finite delays/speeds
    are rejected here so they can never enter the estimator kernels. *)

val pp : Format.formatter -> t -> unit

lib/qspr/trace.mli: Leqa_circuit Leqa_fabric

lib/queueing/simulate.mli: Leqa_util

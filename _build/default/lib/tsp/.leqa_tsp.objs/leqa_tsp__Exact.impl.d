lib/tsp/exact.ml: Array

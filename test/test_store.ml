module Json = Leqa_util.Json
module Fault = Leqa_util.Fault
module Fingerprint = Leqa_util.Fingerprint
module Store = Leqa_server.Store

let fresh_dir () =
  let base = Filename.temp_file "leqa_store_test" "" in
  Sys.remove base;
  base

let key_of s = Fingerprint.of_string s

let doc =
  Json.Obj
    [
      ("schema_version", Json.String "leqa/report/v1");
      ("command", Json.String "estimate");
      ("x", Json.Float 1.25);
      ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
    ]

let test_round_trip () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  let key = key_of "round-trip" in
  Alcotest.(check bool) "absent before put" true (Store.find t key = None);
  Store.put t key doc;
  Alcotest.(check int) "one entry" 1 (Store.entries t);
  (match Store.find t key with
  | Some found ->
    Alcotest.(check string) "document survives byte-identically"
      (Json.to_string doc) (Json.to_string found)
  | None -> Alcotest.fail "entry vanished");
  let s = Store.stats t in
  Alcotest.(check int) "puts counted" 1 s.Store.st_puts;
  Alcotest.(check int) "hits counted" 1 s.Store.st_hits;
  Alcotest.(check int) "miss counted" 1 s.Store.st_misses;
  Alcotest.(check int) "nothing quarantined" 0 s.Store.st_quarantined

let test_survives_reopen () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  Store.put t (key_of "durable") doc;
  (* a second open of the same directory — the restarted server — must
     see the committed entry *)
  let t2 = Store.open_ ~dir () in
  Alcotest.(check bool) "entry visible after reopen" true
    (Store.find t2 (key_of "durable") <> None)

let test_last_writer_wins () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  let key = key_of "lww" in
  Store.put t key doc;
  let doc2 = Json.Obj [ ("v", Json.Int 2) ] in
  Store.put t key doc2;
  Alcotest.(check int) "still one entry" 1 (Store.entries t);
  match Store.find t key with
  | Some found ->
    Alcotest.(check string) "second write wins" (Json.to_string doc2)
      (Json.to_string found)
  | None -> Alcotest.fail "entry vanished"

let test_invalid_key_ignored () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  (* a path-escape "key" must neither write nor read outside the root *)
  Store.put t "../escape" doc;
  Alcotest.(check int) "nothing committed" 0 (Store.entries t);
  Alcotest.(check bool) "nothing found" true (Store.find t "../escape" = None)

let quarantined_count dir =
  Array.length (Sys.readdir (Filename.concat dir "quarantine"))

(* the [find] validation path: a corrupt entry answers None, moves to
   quarantine/ (kept as forensic evidence until the next compaction
   sweep), bumps the counter, and the slot accepts a clean rewrite *)
let corrupt_entry_check ~site () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  let key = key_of site in
  (match Fault.configure (site ^ ":n=1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fault spec rejected");
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Store.put t key doc;
  Alcotest.(check int) "corrupt entry committed" 1 (Store.entries t);
  Alcotest.(check bool) "validation rejects it" true (Store.find t key = None);
  Alcotest.(check int) "moved to quarantine" 1 (quarantined_count dir);
  Alcotest.(check int) "no entry left" 0 (Store.entries t);
  Alcotest.(check int) "counter bumped" 1 (Store.stats t).Store.st_quarantined;
  (* the recompute path: a clean rewrite of the same key must stick *)
  Store.put t key doc;
  match Store.find t key with
  | Some found ->
    Alcotest.(check string) "recomputed entry readable"
      (Json.to_string doc) (Json.to_string found)
  | None -> Alcotest.fail "clean rewrite not visible"

let test_torn_write_quarantined () = corrupt_entry_check ~site:"store.torn_write" ()
let test_bitflip_quarantined () = corrupt_entry_check ~site:"store.bitflip" ()

let test_tmp_swept_on_open () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  Store.put t (key_of "sweep") doc;
  (* simulate a writer SIGKILLed between tmp write and rename *)
  let tmp = Filename.concat (Filename.concat dir "tmp") "deadbeef.123.0" in
  let oc = open_out tmp in
  output_string oc "half a payload";
  close_out oc;
  let t2 = Store.open_ ~dir () in
  Alcotest.(check bool) "tmp leftover swept" false (Sys.file_exists tmp);
  Alcotest.(check int) "committed entries untouched" 1 (Store.entries t2)

(* ---- the size cap (--store-max-bytes) ------------------------------ *)

(* one committed entry's on-disk size, measured on a probe store so cap
   tests can speak in entry multiples *)
let entry_size () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  Store.put t (key_of "probe") doc;
  Store.bytes t

(* mtime is the store's LRU clock; backdate entries so eviction order
   is deterministic regardless of filesystem timestamp granularity *)
let backdate ~dir key ~age_s =
  let t = Unix.gettimeofday () -. age_s in
  Unix.utimes (Filename.concat dir key) t t

let test_cap_evicts_lru () =
  let size = entry_size () in
  let dir = fresh_dir () in
  let t = Store.open_ ~max_bytes:((3 * size) + (size / 2)) ~dir () in
  let keys = List.map (fun s -> key_of s) [ "a"; "b"; "c" ] in
  List.iteri
    (fun i key ->
      Store.put t key doc;
      backdate ~dir key ~age_s:(float_of_int (100 - i)))
    keys;
  Alcotest.(check int) "under cap: nothing evicted" 3 (Store.entries t);
  (* "a" is oldest on disk, but a read refreshes it — so "b" must go *)
  Alcotest.(check bool) "warm read" true
    (Store.find t (List.nth keys 0) <> None);
  Store.put t (key_of "d") doc;
  Alcotest.(check int) "capacity held" 3 (Store.entries t);
  Alcotest.(check bool) "cap respected" true (Store.bytes t <= (3 * size) + (size / 2));
  Alcotest.(check bool) "lru victim evicted" true
    (Store.find t (List.nth keys 1) = None);
  List.iter
    (fun key ->
      Alcotest.(check bool) "recent entries survive" true
        (Store.find t key <> None))
    [ List.nth keys 0; List.nth keys 2; key_of "d" ];
  Alcotest.(check int) "eviction counted" 1 (Store.stats t).Store.st_evicted

let test_cap_across_reopen () =
  let size = entry_size () in
  let dir = fresh_dir () in
  (* an unbounded run grows past what the capped reopen allows *)
  let t = Store.open_ ~dir () in
  List.iteri
    (fun i s ->
      let key = key_of s in
      Store.put t key doc;
      backdate ~dir key ~age_s:(float_of_int (100 - i)))
    [ "a"; "b"; "c"; "d"; "e" ];
  Alcotest.(check int) "five committed" 5 (Store.entries t);
  let cap = (2 * size) + (size / 2) in
  let t2 = Store.open_ ~max_bytes:cap ~dir () in
  Alcotest.(check int) "reopen enforces the cap" 2 (Store.entries t2);
  Alcotest.(check bool) "ledger under cap" true (Store.bytes t2 <= cap);
  Alcotest.(check int) "evictions counted" 3 (Store.stats t2).Store.st_evicted;
  (* the newest entries are the survivors *)
  Alcotest.(check bool) "oldest gone" true (Store.find t2 (key_of "a") = None);
  Alcotest.(check bool) "newest kept" true (Store.find t2 (key_of "e") <> None)

let test_compact_sweeps_quarantine () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  let key = key_of "store.torn_write" in
  (match Fault.configure "store.torn_write:n=1" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fault spec rejected");
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Store.put t key doc;
  Alcotest.(check bool) "rejected on read" true (Store.find t key = None);
  Alcotest.(check int) "quarantined" 1 (quarantined_count dir);
  Store.compact t;
  Alcotest.(check int) "quarantine swept" 0 (quarantined_count dir);
  Alcotest.(check bool) "compactions counted" true
    ((Store.stats t).Store.st_compactions >= 2)

let suite =
  [
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "survives reopen" `Quick test_survives_reopen;
    Alcotest.test_case "last writer wins" `Quick test_last_writer_wins;
    Alcotest.test_case "invalid key ignored" `Quick test_invalid_key_ignored;
    Alcotest.test_case "torn write quarantined" `Quick
      test_torn_write_quarantined;
    Alcotest.test_case "bitflip quarantined" `Quick test_bitflip_quarantined;
    Alcotest.test_case "tmp swept on open" `Quick test_tmp_swept_on_open;
    Alcotest.test_case "cap evicts lru" `Quick test_cap_evicts_lru;
    Alcotest.test_case "cap across reopen" `Quick test_cap_across_reopen;
    Alcotest.test_case "compact sweeps quarantine" `Quick
      test_compact_sweeps_quarantine;
  ]

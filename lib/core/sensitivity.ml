module Params = Leqa_fabric.Params

type entry = { parameter : string; base_value : float; elasticity : float }

let parameters = [ "d_h"; "d_t"; "d_s"; "d_pauli"; "d_cnot"; "v"; "t_move" ]

let read (p : Params.t) = function
  | "d_h" -> p.Params.d_h
  | "d_t" -> p.Params.d_t
  | "d_s" -> p.Params.d_s
  | "d_pauli" -> p.Params.d_pauli
  | "d_cnot" -> p.Params.d_cnot
  | "v" -> p.Params.v
  | "t_move" -> p.Params.t_move
  | name -> invalid_arg ("Sensitivity: unknown parameter " ^ name)

let write (p : Params.t) name value =
  match name with
  | "d_h" -> { p with Params.d_h = value }
  | "d_t" -> { p with Params.d_t = value }
  | "d_s" -> { p with Params.d_s = value }
  | "d_pauli" -> { p with Params.d_pauli = value }
  | "d_cnot" -> { p with Params.d_cnot = value }
  | "v" -> { p with Params.v = value }
  | "t_move" -> { p with Params.t_move = value }
  | _ -> invalid_arg ("Sensitivity: unknown parameter " ^ name)

let elasticity ?config ?(step = 0.05) ~params ~parameter qodg =
  if step <= 0.0 || step >= 1.0 then
    invalid_arg "Sensitivity.elasticity: step out of (0,1)";
  let base = read params parameter in
  let latency p =
    (Estimator.estimate ?config ~params:p qodg).Estimator.latency_us
  in
  let up = latency (write params parameter (base *. (1.0 +. step))) in
  let down = latency (write params parameter (base *. (1.0 -. step))) in
  let d0 = latency params in
  if d0 = 0.0 then 0.0 else (up -. down) /. (2.0 *. step *. d0)

let tornado ?config ?step ?pool ~params qodg =
  let pool =
    match pool with Some p -> p | None -> Leqa_util.Pool.get_default ()
  in
  (* each parameter costs three independent estimator calls (the shared
     base estimate hits the coverage cache after the first), so the sweep
     fans out cleanly over the pool; map_list preserves parameter order,
     so the result is identical at every pool width *)
  let entries =
    Leqa_util.Pool.map_list pool
      ~f:(fun parameter ->
        {
          parameter;
          base_value = read params parameter;
          elasticity = elasticity ?config ?step ~params ~parameter qodg;
        })
      parameters
  in
  List.sort
    (fun a b -> compare (abs_float b.elasticity) (abs_float a.elasticity))
    entries
